package sched

import (
	"fmt"
	"math"

	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

// EMA is the paper's Energy Minimization Algorithm (Alg. 2).
//
// Goal (Eq. 14): minimize the average energy PE(Γ) subject to Eq. (1),
// Eq. (2) and the average rebuffering bound PC(Γ) ≤ Ω (Eq. 13). EMA keeps
// one virtual rebuffering queue per user (Eq. 16),
//
//	PC_i(n+1) = PC_i(n) + τ − t_i(n),  t_i(n) = d_i(n)/p_i(n)
//
// whose positive part accumulates rebuffering pressure and whose negative
// part measures buffered headroom. Each slot it minimizes the Lyapunov
// drift-plus-penalty bound (Eq. 21–22),
//
//	min Σ_i f(i, ϕ_i) ,  f(i, ϕ) = V·E_i(n, ϕ) + PC_i(n)·(τ − ϕδ/p_i)
//
// over the separable capacity constraint Σϕ_i ≤ ⌊τS/δ⌋. E_i(n, ϕ) follows
// Eq. (5): transmission energy P(sig)·ϕδ when ϕ > 0, otherwise the tail
// energy the radio would burn idling through this slot.
//
// The per-slot subproblem is the multi-choice knapsack of Alg. 2. Because
// f(i, ϕ) is affine in ϕ for ϕ ≥ 1 (only the ϕ = 0 tail branch breaks the
// line), the DP's inner minimization is a sliding-window minimum and the
// default solver runDP runs in O(users × capacity) using the block-minima
// kernel in ema_kernel.go — see DESIGN.md §4, "Fast EMA DP", and §10 for
// the kernel. The previous monotone-deque solver is kept as runDPDeque
// (allocation-identical, asserted), and the paper-literal
// O(users × capacity²) DP as runDPRef, exposed through AllocateDeque /
// AllocateRef; the arms are differentially tested (internal/simtest,
// TestEMAFastMatchesRef; sched's TestEMABlockMatchesDeque) so the fast
// path is pinned both in objective and bit-for-bit in allocation.
//
// The weight V trades energy against rebuffering: Theorem 1 bounds
// PE ≤ E* + B/V and PC ≤ (B + V·E*)/ε, so larger V saves more energy at
// the cost of a longer (but still bounded) rebuffering backlog. The
// experiment harness calibrates V so the measured PC meets the paper's
// Ω = β·R_Default target.
type EMA struct {
	v   float64 // Lyapunov penalty weight V
	rrc rrc.Profile

	queues []units.Seconds // PC_i virtual queues, grown on demand

	// tailDrained caches rrc.TailDrainedAfter so the common "tail long
	// gone" skip cost is a single compare. tailVals/tailKeys memoize the
	// nonzero E(gap+τ)−E(gap) increments, which repeat across slots
	// because gaps advance in multiples of τ: entry k serves
	// gap ≈ k·τ, with the exact gap stored in tailKeys so a rounding
	// collision recomputes instead of returning a neighbor's value. The
	// memo stays bounded: only gaps inside the tail window are inserted,
	// and the index is capped at maxTailMemo. tailTau is the τ the table
	// was built for; a different τ flushes it.
	tailDrained units.Seconds
	tailVals    []float64
	tailKeys    []units.Seconds
	tailTau     units.Seconds

	// DP scratch, reused across slots.
	cost    []float64 // a[·]: best objective for exactly M units used
	next    []float64
	choice  [][]uint16 // g[i][M]: units granted to i-th DP user at state M
	dpUser  []int      // indices of users participating in the DP
	dpBound int        // active-count bound for scratch growth this slot
	dqJ     []int32    // deque scratch: candidate predecessor states j
	dqG     []float64  // deque scratch: g[j] = cost[j] − perUnit·j
	blk     emaBlockScratch
	act     []int // ActiveIndices fallback scratch
}

// maxTailMemo bounds the tail-increment memo: gaps beyond this many slot
// widths are computed directly (they are rare — the drained short-circuit
// already serves long-idle users).
const maxTailMemo = 4096

// EMAConfig configures EMA.
type EMAConfig struct {
	// V is the Lyapunov penalty weight; larger V favors energy saving.
	V float64
	// RRC supplies the tail-energy model for the cost of skipping a slot.
	RRC rrc.Profile
}

// NewEMA validates the configuration and returns the scheduler.
func NewEMA(cfg EMAConfig) (*EMA, error) {
	if cfg.V <= 0 || math.IsNaN(cfg.V) || math.IsInf(cfg.V, 0) {
		return nil, fmt.Errorf("ema: invalid V %v", cfg.V)
	}
	if err := cfg.RRC.Validate(); err != nil {
		return nil, err
	}
	return &EMA{v: cfg.V, rrc: cfg.RRC, tailDrained: cfg.RRC.TailDrainedAfter()}, nil
}

// Name implements Scheduler.
func (*EMA) Name() string { return "EMA" }

// V returns the Lyapunov weight.
func (e *EMA) V() float64 { return e.v }

// RRC returns the tail-energy profile the skip cost is priced with.
// internal/simtest uses it to recompute the Eq. (21–22) objective from
// public state when differentially testing the DP fast path.
func (e *EMA) RRC() rrc.Profile { return e.rrc }

// Queue returns the current virtual queue PC_i for user i (0 for users
// never seen). Exposed for tests and the bound analysis in
// internal/lyapunov.
func (e *EMA) Queue(i int) units.Seconds {
	if i < 0 || i >= len(e.queues) {
		return 0
	}
	return e.queues[i]
}

// SetQueue overrides the virtual queue PC_i for user i, growing the queue
// vector as needed. It exists for test harnesses (internal/simtest, the
// fuzz targets) that need to place the scheduler in an arbitrary queue
// state before a differential step; production callers never need it.
func (e *EMA) SetQueue(i int, q units.Seconds) {
	if i < 0 {
		return
	}
	e.ensureQueues(i + 1)
	e.queues[i] = q
}

// ensureQueues grows the queue vector to cover n users.
func (e *EMA) ensureQueues(n int) {
	for len(e.queues) < n {
		e.queues = append(e.queues, 0)
	}
}

// tailIncrement returns E_tail(gap+τ) − E_tail(gap), memoized. Gaps at or
// beyond the drained point short-circuit to zero without touching the
// memo, which both serves the common long-idle case and bounds the memo
// to the O(T1+T2 / τ) distinct in-tail gaps. The memo is a slice indexed
// by round(gap/τ) — gaps advance in multiples of τ, so the index is
// exact in practice; the stored key makes a collision recompute rather
// than mis-serve.
func (e *EMA) tailIncrement(gap, tau units.Seconds) float64 {
	if gap >= e.tailDrained {
		return 0
	}
	if tau <= 0 {
		return float64(e.rrc.TailIncrement(gap, tau))
	}
	if tau != e.tailTau {
		e.tailTau = tau
		for i := range e.tailKeys {
			e.tailKeys[i] = -1
		}
	}
	k := int(float64(gap)/float64(tau) + 0.5)
	if k < 0 || k >= maxTailMemo {
		return float64(e.rrc.TailIncrement(gap, tau))
	}
	for len(e.tailKeys) <= k {
		e.tailKeys = append(e.tailKeys, -1)
		e.tailVals = append(e.tailVals, 0)
	}
	if e.tailKeys[k] == gap {
		return e.tailVals[k]
	}
	v := float64(e.rrc.TailIncrement(gap, tau))
	e.tailKeys[k] = gap
	e.tailVals[k] = v
	return v
}

// slotCost evaluates f(i, ϕ) for the user at slot index i.
func (e *EMA) slotCost(slot *Slot, i, phi int) float64 {
	var energy float64
	if phi > 0 {
		energy = float64(slot.EnergyPerKBAt(i)) * float64(phi) * float64(slot.Unit)
	} else if !slot.NeverActiveAt(i) {
		// Tail energy the radio burns idling through this slot (Eq. 4,
		// incremental form).
		energy = e.tailIncrement(slot.TailGapAt(i), slot.Tau)
	}
	t := 0.0
	if phi > 0 {
		t = float64(phi) * float64(slot.Unit) / float64(slot.RateAt(i))
	}
	return e.v*energy + float64(e.queues[i])*(float64(slot.Tau)-t)
}

// Allocate implements Scheduler following Alg. 2, solving the per-slot
// subproblem with the O(users × capacity) monotone-deque DP.
func (e *EMA) Allocate(slot *Slot, alloc []int) {
	e.allocate(slot, alloc, (*EMA).runDP)
}

// AllocateRef is Allocate with the paper-literal quadratic DP (runDPRef)
// in place of the block fast path. It exists as the reference arm of the
// differential tests and fuzz targets in internal/simtest; both paths
// must produce allocations with identical objective value.
func (e *EMA) AllocateRef(slot *Slot, alloc []int) {
	e.allocate(slot, alloc, (*EMA).runDPRef)
}

// AllocateDeque is Allocate with the monotone-deque DP (runDPDeque), the
// previous fast path. It exists as a second differential arm: the block
// kernel in ema_kernel.go must reproduce the deque's allocations bit for
// bit (not merely objective-identical), which the property tests in
// internal/simtest assert.
func (e *EMA) AllocateDeque(slot *Slot, alloc []int) {
	e.allocate(slot, alloc, (*EMA).runDPDeque)
}

func (e *EMA) allocate(slot *Slot, alloc []int, dp func(*EMA, *Slot, []int, int)) {
	e.ensureQueues(slot.NumUsers())

	// Active users with a positive link bound participate in the DP;
	// everyone else necessarily gets ϕ = 0 and only contributes a constant
	// to the objective, which cannot change the argmin.
	active := slot.ActiveIndices(&e.act)
	if cap(e.dpUser) < len(active) {
		e.dpUser = make([]int, 0, len(active))
	}
	// The DP participant count fluctuates slot to slot; bound the scratch
	// by the active count so a later, busier slot never allocates mid-run.
	e.dpBound = len(active)
	e.dpUser = e.dpUser[:0]
	for _, i := range active {
		if slot.MaxUnitsAt(i) > 0 && slot.RateAt(i) > 0 {
			e.dpUser = append(e.dpUser, i)
		}
	}

	capacity := slot.CapacityUnits
	if len(e.dpUser) > 0 && capacity > 0 {
		dp(e, slot, alloc, capacity)
	}

	// Eq. (16): advance every active user's virtual queue using the slot's
	// final decision. Inactive users keep their queue frozen.
	for _, i := range active {
		t := 0.0
		if alloc[i] > 0 {
			t = float64(alloc[i]) * float64(slot.Unit) / float64(slot.RateAt(i))
		}
		e.queues[i] += units.Seconds(float64(slot.Tau) - t)
	}
}

// userLine holds the affine decomposition of f(i, ϕ) for one DP user:
// f(i, 0) = skip, and f(i, ϕ) = base + perUnit·ϕ for ϕ ≥ 1.
type userLine struct {
	skip, base, perUnit float64
	maxPhi              int
}

// line decomposes user idx's slot cost for the DP solvers.
func (e *EMA) line(slot *Slot, idx, capacity int) userLine {
	maxPhi := slot.MaxUnitsAt(idx)
	if maxPhi > capacity {
		maxPhi = capacity
	}
	q := float64(e.queues[idx])
	return userLine{
		skip: e.slotCost(slot, idx, 0),
		base: q * float64(slot.Tau),
		perUnit: e.v*float64(slot.EnergyPerKBAt(idx))*float64(slot.Unit) -
			q*float64(slot.Unit)/float64(slot.RateAt(idx)),
		maxPhi: maxPhi,
	}
}

// prepareDP sizes the shared DP scratch and sets the border condition:
// zero users processed, exactly M units used is feasible only for M = 0.
func (e *EMA) prepareDP(n, capacity int) {
	e.cost = resize(e.cost, capacity+1)
	e.next = resize(e.next, capacity+1)
	// Grow the choice table to the slot's active-count bound (not just the
	// DP participant count) so steady-state slots never allocate even when
	// participation churns upward.
	bound := n
	if e.dpBound > bound {
		bound = e.dpBound
	}
	if cap(e.choice) < bound {
		e.choice = make([][]uint16, bound)
	}
	e.choice = e.choice[:bound]
	for k := range e.choice {
		e.choice[k] = resizeU16(e.choice[k], capacity+1)
	}
	e.choice = e.choice[:n]
	e.cost[0] = 0
	for m := 1; m <= capacity; m++ {
		e.cost[m] = math.MaxFloat64
	}
}

// finishDP picks the total allocation minimizing the objective (step 15)
// and backtracks the per-user grants (steps 16–18).
func (e *EMA) finishDP(alloc []int, n, capacity int) {
	bestM, bestCost := 0, math.MaxFloat64
	for m := 0; m <= capacity; m++ {
		if e.cost[m] < bestCost {
			bestCost, bestM = e.cost[m], m
		}
	}
	for k := n - 1; k >= 0; k-- {
		phi := int(e.choice[k][bestM])
		alloc[e.dpUser[k]] = phi
		bestM -= phi
	}
}

// runDP solves min Σ f(i, ϕ_i) s.t. Σϕ_i ≤ capacity exactly, in
// O(n × capacity), then writes the argmin allocation.
//
// For each user the transition is
//
//	next[m] = min( cost[m] + skip,
//	               min_{1 ≤ ϕ ≤ min(maxPhi, m)} cost[m−ϕ] + base + perUnit·ϕ )
//
// and substituting j = m−ϕ turns the inner min into
//
//	base + perUnit·m + min_{j ∈ [m−maxPhi, m−1]} (cost[j] − perUnit·j),
//
// a sliding-window minimum over g[j] = cost[j] − perUnit·j, answered by
// the branch-regular block kernel in ema_kernel.go (emaUserPass). The
// kernel prefers the largest j (smallest ϕ) on ties in g, matching
// runDPRef's smallest-ϕ tie-breaking, and reproduces the monotone-deque
// pass (runDPDeque) bit for bit — internal/simtest asserts allocation
// identity across all three solvers.
func (e *EMA) runDP(slot *Slot, alloc []int, capacity int) {
	n := len(e.dpUser)
	e.prepareDP(n, capacity)

	// The kernel writes only states up to the running reachability bound
	// Σ maxPhi; everything above must already hold the MaxFloat64
	// unreachable sentinel in BOTH ping-pong rows (prepareDP seeds one,
	// this seeds the other), or stale finite values from the previous
	// slot would leak into finishDP's argmin.
	for m := 1; m <= capacity; m++ {
		e.next[m] = math.MaxFloat64
	}

	reach := 0
	for k, idx := range e.dpUser {
		l := e.line(slot, idx, capacity)
		// States above Σ maxPhi so far are unreachable for every later
		// row too (reach is monotone), so the kernel can stop there —
		// early users with small link bounds cost O(reach), not
		// O(capacity).
		reach += l.maxPhi
		if reach > capacity {
			reach = capacity
		}
		emaUserPass(e.cost[:capacity+1], e.next[:capacity+1], e.choice[k], l, &e.blk, reach)
		e.cost, e.next = e.next, e.cost
	}
	e.finishDP(alloc, n, capacity)
}

// runDPDeque is the previous fast path: the same sliding-window minimum
// answered with a monotone deque, amortized O(1) per state. Each state j
// is pushed and popped at most once per user; the deque prefers the
// largest j (smallest ϕ) on ties in g via ≥-eviction, and unreachable
// states (cost = MaxFloat64) are never pushed, preserving the
// reference's exact infeasibility semantics. Kept as the middle arm of
// the three-way differential tests gating the block kernel.
func (e *EMA) runDPDeque(slot *Slot, alloc []int, capacity int) {
	n := len(e.dpUser)
	e.prepareDP(n, capacity)
	e.dqJ = resizeI32(e.dqJ, capacity+1)
	e.dqG = resize(e.dqG, capacity+1)

	const inf = math.MaxFloat64
	for k, idx := range e.dpUser {
		l := e.line(slot, idx, capacity)
		choice := e.choice[k]

		head, tail := 0, 0
		for m := 0; m <= capacity; m++ {
			if m > 0 {
				// State j = m−1 enters the window (ϕ = 1 is always
				// within maxPhi ≥ 1); stale states leave at the front.
				if prev := e.cost[m-1]; prev < inf {
					g := prev - l.perUnit*float64(m-1)
					for tail > head && e.dqG[tail-1] >= g {
						tail--
					}
					e.dqJ[tail] = int32(m - 1)
					e.dqG[tail] = g
					tail++
				}
				for tail > head && int(e.dqJ[head]) < m-l.maxPhi {
					head++
				}
			}
			best := inf
			var bestPhi uint16
			if e.cost[m] < inf {
				best = e.cost[m] + l.skip
			}
			if tail > head {
				if c := l.base + l.perUnit*float64(m) + e.dqG[head]; c < best {
					best = c
					bestPhi = uint16(m - int(e.dqJ[head]))
				}
			}
			e.next[m] = best
			choice[m] = bestPhi
		}
		e.cost, e.next = e.next, e.cost
	}
	e.finishDP(alloc, n, capacity)
}

// runDPRef is the paper-literal O(n × capacity × maxPhi) dynamic program
// of Alg. 2, kept verbatim as the reference arm of the differential tests:
// it evaluates every ϕ branch explicitly, so it stays correct for
// arbitrary (non-affine) cost shapes and gates the deque fast path.
func (e *EMA) runDPRef(slot *Slot, alloc []int, capacity int) {
	n := len(e.dpUser)
	e.prepareDP(n, capacity)

	const inf = math.MaxFloat64
	for k, idx := range e.dpUser {
		l := e.line(slot, idx, capacity)
		choice := e.choice[k]

		for m := 0; m <= capacity; m++ {
			best := inf
			var bestPhi uint16
			// ϕ = 0 branch.
			if e.cost[m] < inf {
				best = e.cost[m] + l.skip
			}
			// ϕ ≥ 1 branches: f(ϕ) = base + perUnit·ϕ.
			hi := l.maxPhi
			if hi > m {
				hi = m
			}
			for phi := 1; phi <= hi; phi++ {
				prev := e.cost[m-phi]
				if prev >= inf {
					continue
				}
				c := prev + l.base + l.perUnit*float64(phi)
				if c < best {
					best = c
					bestPhi = uint16(phi)
				}
			}
			e.next[m] = best
			choice[m] = bestPhi
		}
		e.cost, e.next = e.next, e.cost
	}
	e.finishDP(alloc, n, capacity)
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeU16(s []uint16, n int) []uint16 {
	if cap(s) < n {
		return make([]uint16, n)
	}
	return s[:n]
}

func resizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

var _ Scheduler = (*EMA)(nil)
