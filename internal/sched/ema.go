package sched

import (
	"fmt"
	"math"

	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

// EMA is the paper's Energy Minimization Algorithm (Alg. 2).
//
// Goal (Eq. 14): minimize the average energy PE(Γ) subject to Eq. (1),
// Eq. (2) and the average rebuffering bound PC(Γ) ≤ Ω (Eq. 13). EMA keeps
// one virtual rebuffering queue per user (Eq. 16),
//
//	PC_i(n+1) = PC_i(n) + τ − t_i(n),  t_i(n) = d_i(n)/p_i(n)
//
// whose positive part accumulates rebuffering pressure and whose negative
// part measures buffered headroom. Each slot it minimizes the Lyapunov
// drift-plus-penalty bound (Eq. 21–22),
//
//	min Σ_i f(i, ϕ_i) ,  f(i, ϕ) = V·E_i(n, ϕ) + PC_i(n)·(τ − ϕδ/p_i)
//
// over the separable capacity constraint Σϕ_i ≤ ⌊τS/δ⌋, using the exact
// dynamic program of Alg. 2 (a multi-choice knapsack). E_i(n, ϕ) follows
// Eq. (5): transmission energy P(sig)·ϕδ when ϕ > 0, otherwise the tail
// energy the radio would burn idling through this slot.
//
// The weight V trades energy against rebuffering: Theorem 1 bounds
// PE ≤ E* + B/V and PC ≤ (B + V·E*)/ε, so larger V saves more energy at
// the cost of a longer (but still bounded) rebuffering backlog. The
// experiment harness calibrates V so the measured PC meets the paper's
// Ω = β·R_Default target.
type EMA struct {
	v   float64 // Lyapunov penalty weight V
	rrc rrc.Profile

	queues []units.Seconds // PC_i virtual queues, grown on demand

	// DP scratch, reused across slots.
	cost   []float64 // a[·]: best objective for exactly M units used
	next   []float64
	choice [][]uint16 // g[i][M]: units granted to i-th DP user at state M
	dpUser []int      // indices of users participating in the DP
}

// EMAConfig configures EMA.
type EMAConfig struct {
	// V is the Lyapunov penalty weight; larger V favors energy saving.
	V float64
	// RRC supplies the tail-energy model for the cost of skipping a slot.
	RRC rrc.Profile
}

// NewEMA validates the configuration and returns the scheduler.
func NewEMA(cfg EMAConfig) (*EMA, error) {
	if cfg.V <= 0 || math.IsNaN(cfg.V) || math.IsInf(cfg.V, 0) {
		return nil, fmt.Errorf("ema: invalid V %v", cfg.V)
	}
	if err := cfg.RRC.Validate(); err != nil {
		return nil, err
	}
	return &EMA{v: cfg.V, rrc: cfg.RRC}, nil
}

// Name implements Scheduler.
func (*EMA) Name() string { return "EMA" }

// V returns the Lyapunov weight.
func (e *EMA) V() float64 { return e.v }

// Queue returns the current virtual queue PC_i for user i (0 for users
// never seen). Exposed for tests and the bound analysis in
// internal/lyapunov.
func (e *EMA) Queue(i int) units.Seconds {
	if i < 0 || i >= len(e.queues) {
		return 0
	}
	return e.queues[i]
}

// ensureQueues grows the queue vector to cover n users.
func (e *EMA) ensureQueues(n int) {
	for len(e.queues) < n {
		e.queues = append(e.queues, 0)
	}
}

// slotCost evaluates f(i, ϕ) for one user.
func (e *EMA) slotCost(slot *Slot, u *User, phi int) float64 {
	var energy float64
	if phi > 0 {
		energy = float64(u.EnergyPerKB) * float64(phi) * float64(slot.Unit)
	} else if !u.NeverActive {
		// Tail energy the radio burns idling through this slot (Eq. 4,
		// incremental form).
		energy = float64(e.rrc.TailEnergy(u.TailGap+slot.Tau) - e.rrc.TailEnergy(u.TailGap))
	}
	t := 0.0
	if phi > 0 {
		t = float64(phi) * float64(slot.Unit) / float64(u.Rate)
	}
	return e.v*energy + float64(e.queues[u.Index])*(float64(slot.Tau)-t)
}

// Allocate implements Scheduler following Alg. 2.
func (e *EMA) Allocate(slot *Slot, alloc []int) {
	users := slot.Users
	e.ensureQueues(len(users))

	// Users with a positive link bound participate in the DP; everyone
	// else necessarily gets ϕ = 0 and only contributes a constant to the
	// objective, which cannot change the argmin.
	e.dpUser = e.dpUser[:0]
	for i := range users {
		u := &users[i]
		if u.Active && u.MaxUnits > 0 && u.Rate > 0 {
			e.dpUser = append(e.dpUser, i)
		}
	}

	capacity := slot.CapacityUnits
	if len(e.dpUser) > 0 && capacity > 0 {
		e.runDP(slot, alloc, capacity)
	}

	// Eq. (16): advance every active user's virtual queue using the slot's
	// final decision. Inactive users keep their queue frozen.
	for i := range users {
		u := &users[i]
		if !u.Active {
			continue
		}
		t := 0.0
		if alloc[i] > 0 {
			t = float64(alloc[i]) * float64(slot.Unit) / float64(u.Rate)
		}
		e.queues[i] += units.Seconds(float64(slot.Tau) - t)
	}
}

// runDP solves min Σ f(i, ϕ_i) s.t. Σϕ_i ≤ capacity exactly, then writes
// the argmin allocation. cost[M] holds the best objective over the users
// processed so far when exactly M units have been granted.
func (e *EMA) runDP(slot *Slot, alloc []int, capacity int) {
	users := slot.Users
	n := len(e.dpUser)

	e.cost = resize(e.cost, capacity+1)
	e.next = resize(e.next, capacity+1)
	if cap(e.choice) < n {
		e.choice = make([][]uint16, n)
	}
	e.choice = e.choice[:n]
	for k := range e.choice {
		e.choice[k] = resizeU16(e.choice[k], capacity+1)
	}

	const inf = math.MaxFloat64
	// Border: zero users, exactly M units used is feasible only for M=0.
	e.cost[0] = 0
	for m := 1; m <= capacity; m++ {
		e.cost[m] = inf
	}

	for k, idx := range e.dpUser {
		u := &users[idx]
		maxPhi := u.MaxUnits
		if maxPhi > capacity {
			maxPhi = capacity
		}
		// Precompute f(i, ϕ) for ϕ = 0..maxPhi. f is affine in ϕ except
		// for the ϕ=0 tail jump, but we keep the general evaluation: it is
		// cheap and stays correct for arbitrary cost shapes.
		skip := e.slotCost(slot, u, 0)
		perUnit := e.v*float64(u.EnergyPerKB)*float64(slot.Unit) -
			float64(e.queues[u.Index])*float64(slot.Unit)/float64(u.Rate)
		base := float64(e.queues[u.Index]) * float64(slot.Tau)

		for m := 0; m <= capacity; m++ {
			best := inf
			var bestPhi uint16
			// ϕ = 0 branch.
			if e.cost[m] < inf {
				best = e.cost[m] + skip
			}
			// ϕ ≥ 1 branches: f(ϕ) = base + perUnit·ϕ.
			hi := maxPhi
			if hi > m {
				hi = m
			}
			for phi := 1; phi <= hi; phi++ {
				prev := e.cost[m-phi]
				if prev >= inf {
					continue
				}
				c := prev + base + perUnit*float64(phi)
				if c < best {
					best = c
					bestPhi = uint16(phi)
				}
			}
			e.next[m] = best
			e.choice[k][m] = bestPhi
		}
		e.cost, e.next = e.next, e.cost
	}

	// Step 15: the total allocation minimizing the objective.
	bestM, bestCost := 0, inf
	for m := 0; m <= capacity; m++ {
		if e.cost[m] < bestCost {
			bestCost, bestM = e.cost[m], m
		}
	}
	// Steps 16–18: backtrack per-user grants.
	for k := n - 1; k >= 0; k-- {
		phi := int(e.choice[k][bestM])
		alloc[e.dpUser[k]] = phi
		bestM -= phi
	}
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func resizeU16(s []uint16, n int) []uint16 {
	if cap(s) < n {
		return make([]uint16, n)
	}
	return s[:n]
}

var _ Scheduler = (*EMA)(nil)
