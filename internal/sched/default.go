package sched

// DefaultScheduler is the paper's baseline (§VI-A): it "delivers video
// contents to each user as much as possible to make full use of throughput
// and satisfy the required data rate". Users are served greedily in index
// order until the slot capacity is exhausted, each receiving up to its
// link limit. Under contention this systematically starves high-index
// users — exactly the unfairness Figures 2 and 3 attribute to it.
type DefaultScheduler struct {
	act []int // ActiveIndices fallback scratch
}

// NewDefault returns the greedy baseline scheduler.
func NewDefault() *DefaultScheduler { return &DefaultScheduler{} }

// Name implements Scheduler.
func (*DefaultScheduler) Name() string { return "Default" }

// Allocate implements Scheduler.
func (d *DefaultScheduler) Allocate(slot *Slot, alloc []int) {
	remaining := slot.CapacityUnits
	for _, i := range slot.ActiveIndices(&d.act) {
		if remaining == 0 {
			break
		}
		a := slot.MaxUnitsAt(i)
		if a > remaining {
			a = remaining
		}
		alloc[i] = a
		remaining -= a
	}
}
