package sched

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/units"
)

func newRTMA(t *testing.T, budget units.MJ) *RTMA {
	t.Helper()
	r, err := NewRTMA(RTMAConfig{Budget: budget, Radio: radio.Paper3G(), RRC: rrc.Paper3G()})
	if err != nil {
		t.Fatalf("NewRTMA: %v", err)
	}
	return r
}

// looseBudget admits every signal in [-110,-50]: the most expensive slot
// is at -110 dBm where ½(P·v + Pd) = ½(-0.167·329.0+1560+732.83) ≈ 1119 mJ.
const looseBudget = units.MJ(2000)

func TestRTMAValidation(t *testing.T) {
	if _, err := NewRTMA(RTMAConfig{Budget: 0, Radio: radio.Paper3G(), RRC: rrc.Paper3G()}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewRTMA(RTMAConfig{Budget: 100, RRC: rrc.Paper3G()}); err == nil {
		t.Error("missing radio model accepted")
	}
	if _, err := NewRTMA(RTMAConfig{Budget: 100, Radio: radio.Paper3G(), RRC: rrc.Paper3G(),
		SigMin: -50, SigMax: -110}); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestRTMAThresholdMonotoneInBudget(t *testing.T) {
	// A looser budget must admit weaker signals (lower threshold).
	prev := units.DBm(math.Inf(-1))
	for _, budget := range []units.MJ{2000, 1100, 1000, 900, 800} {
		r := newRTMA(t, budget)
		th := r.Threshold()
		if th < prev {
			t.Errorf("budget %v: threshold %v below looser budget's %v", budget, th, prev)
		}
		prev = th
	}
}

func TestRTMAThresholdSolvesEq12(t *testing.T) {
	// For a budget inside the representable range, the threshold must
	// satisfy ½(P(φ)v(φ) + Pd) ≈ Φ.
	cfg := RTMAConfig{Budget: 1000, Radio: radio.Paper3G(), RRC: rrc.Paper3G()}
	r, err := NewRTMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	th := r.Threshold()
	if th < -110 || th > -50 {
		t.Fatalf("threshold %v outside physical range", th)
	}
	got := slotEnergyAt(cfg, th)
	if math.Abs(got-1000) > 1 {
		t.Errorf("slot energy at threshold = %v, want ~1000", got)
	}
}

func TestRTMAAdmitAllWithLooseBudget(t *testing.T) {
	r := newRTMA(t, looseBudget)
	slot := makeSlot(1000, stdUser(400, -110, 3), stdUser(500, -109, 3))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	if alloc[0] == 0 || alloc[1] == 0 {
		t.Errorf("loose budget should admit weak-signal users: %v", alloc)
	}
}

func TestRTMAAdmitNoneWithTinyBudget(t *testing.T) {
	r := newRTMA(t, 1) // even -50 dBm costs ~790 mJ
	slot := makeSlot(1000, stdUser(400, -50, 40), stdUser(500, -55, 40))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("tiny budget admitted users: %v", alloc)
	}
}

func TestRTMABlocksWeakSignalUsers(t *testing.T) {
	// Budget that admits -60 but not -100 dBm.
	cfg := RTMAConfig{Budget: 900, Radio: radio.Paper3G(), RRC: rrc.Paper3G()}
	r, err := NewRTMA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if th := r.Threshold(); th <= -100 || th >= -60 {
		t.Fatalf("test premise broken: threshold %v not in (-100,-60)", th)
	}
	slot := makeSlot(1000, stdUser(400, -100, 40), stdUser(500, -60, 40))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	if alloc[0] != 0 {
		t.Errorf("weak user allocated %d, want 0", alloc[0])
	}
	if alloc[1] == 0 {
		t.Error("strong user got nothing")
	}
}

func TestRTMASmallestRateFirstUnderScarcity(t *testing.T) {
	r := newRTMA(t, looseBudget)
	// Capacity: 9 units. Needs: user0 (600KB/s) = 6, user1 (300KB/s) = 3.
	slot := makeSlot(9, stdUser(600, -60, 40), stdUser(300, -60, 40))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	// Round 1 serves the low-rate user first: u1 gets 3, then u0 gets 6.
	if alloc[1] != 3 {
		t.Errorf("low-rate user got %d, want its full need 3", alloc[1])
	}
	if alloc[0]+alloc[1] != 9 {
		t.Errorf("capacity not exhausted: %v", alloc)
	}
}

func TestRTMALowRateUserNeverStarved(t *testing.T) {
	r := newRTMA(t, looseBudget)
	// Extremely scarce: 2 units only. The 300 KB/s user's need is 3, the
	// 600 KB/s user's need is 6; RTMA serves the smaller-rate user first.
	slot := makeSlot(2, stdUser(600, -60, 40), stdUser(300, -60, 40))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	if alloc[1] != 2 {
		t.Errorf("scarce capacity should all go to the low-rate user: %v", alloc)
	}
}

func TestRTMARoundsFillSpareCapacity(t *testing.T) {
	r := newRTMA(t, looseBudget)
	// Plenty of capacity: after needs are met, rounds keep topping up to
	// the link bounds (buffering ahead), as steps 4-15 intend.
	slot := makeSlot(100, stdUser(400, -60, 10), stdUser(500, -60, 10))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	if alloc[0] != 10 || alloc[1] != 10 {
		t.Errorf("spare capacity unused: %v, want [10 10]", alloc)
	}
}

func TestRTMARespectsConstraints(t *testing.T) {
	r := newRTMA(t, looseBudget)
	slot := makeSlot(15,
		stdUser(300, -55, 40), stdUser(450, -70, 20), stdUser(600, -90, 12),
		stdUser(350, -100, 8), stdUser(550, -65, 30),
	)
	alloc := make([]int, 5)
	r.Allocate(slot, alloc)
	if err := slot.Validate(alloc); err != nil {
		t.Errorf("RTMA violated constraints: %v", err)
	}
	total := 0
	for _, a := range alloc {
		total += a
	}
	if total != 15 {
		t.Errorf("capacity underused under contention: %d/15", total)
	}
}

func TestRTMAIgnoresInactiveAndZeroLink(t *testing.T) {
	r := newRTMA(t, looseBudget)
	inactive := stdUser(400, -60, 40)
	inactive.Active = false
	zeroLink := stdUser(400, -60, 0)
	slot := makeSlot(100, inactive, zeroLink, stdUser(400, -60, 10))
	alloc := make([]int, 3)
	r.Allocate(slot, alloc)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Errorf("allocated to inactive/zero-link users: %v", alloc)
	}
	if alloc[2] != 10 {
		t.Errorf("healthy user got %d, want 10", alloc[2])
	}
}

func TestRTMATerminatesWithZeroRateUser(t *testing.T) {
	r := newRTMA(t, looseBudget)
	slot := makeSlot(10, stdUser(0, -60, 40))
	alloc := make([]int, 1)
	// A zero-rate user has ϕ_need = 0; the allocation loop must still
	// terminate (the test binary deadline catches an infinite loop) and
	// use the spare capacity.
	r.Allocate(slot, alloc)
	if alloc[0] != 10 {
		t.Errorf("zero-rate user should still absorb capacity: %v", alloc)
	}
}

func TestRTMAZeroNeedDrainIsLinear(t *testing.T) {
	// Regression: zero-need users used to be granted max(need,1) = 1 unit
	// per water-filling round, so a cell full of idle (zero-rate) users
	// with a large capacity took O(capacity × N) rounds to drain. They now
	// absorb a whole link bound in one grant, so this finishes instantly;
	// the test binary deadline catches a return to the degenerate rounds.
	r := newRTMA(t, looseBudget)
	const n = 500
	users := make([]User, n)
	for i := range users {
		users[i] = stdUser(0, -60, 5000)
	}
	slot := makeSlot(2_500_000, users...)
	alloc := make([]int, n)
	r.Allocate(slot, alloc)
	total := 0
	for i, a := range alloc {
		if a != 5000 {
			t.Fatalf("zero-need user %d got %d, want its full link bound 5000", i, a)
		}
		total += a
	}
	if total != n*5000 {
		t.Errorf("total allocation %d, want %d", total, n*5000)
	}
}

func TestRTMANeedyServedBeforeZeroNeed(t *testing.T) {
	// Zero-need users only soak up what the needy leave behind: under
	// scarcity they must get nothing.
	r := newRTMA(t, looseBudget)
	// Capacity 6; the needy 600 KB/s user needs 6 per slot.
	slot := makeSlot(6, stdUser(0, -60, 40), stdUser(600, -60, 40))
	alloc := make([]int, 2)
	r.Allocate(slot, alloc)
	if alloc[1] != 6 {
		t.Errorf("needy user got %d, want all 6 units", alloc[1])
	}
	if alloc[0] != 0 {
		t.Errorf("zero-need user got %d under scarcity, want 0", alloc[0])
	}
}

func TestRTMAZeroNeedDrainInIndexOrder(t *testing.T) {
	// With spare capacity for only part of the zero-need pool, the drain
	// serves ascending user indices.
	r := newRTMA(t, looseBudget)
	slot := makeSlot(15, stdUser(0, -60, 10), stdUser(0, -60, 10), stdUser(0, -60, 10))
	alloc := make([]int, 3)
	r.Allocate(slot, alloc)
	if alloc[0] != 10 || alloc[1] != 5 || alloc[2] != 0 {
		t.Errorf("drain order wrong: %v, want [10 5 0]", alloc)
	}
}

func TestBudgetForAlpha(t *testing.T) {
	b, err := BudgetForAlpha(500, 1.2)
	if err != nil || b != 600 {
		t.Errorf("BudgetForAlpha = %v, %v; want 600", b, err)
	}
	if _, err := BudgetForAlpha(0, 1); err == nil {
		t.Error("zero default energy accepted")
	}
	if _, err := BudgetForAlpha(500, 0); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := BudgetForAlpha(500, math.NaN()); err == nil {
		t.Error("NaN alpha accepted")
	}
}

// Property: RTMA never violates Eq. (1)/(2) and never allocates to users
// below the threshold.
func TestRTMAConstraintsProperty(t *testing.T) {
	r := newRTMA(t, 950)
	th := r.Threshold()
	f := func(rates []uint16, sigs []uint8, capRaw uint16) bool {
		n := len(rates)
		if n == 0 || n > 12 {
			return true
		}
		if len(sigs) < n {
			return true
		}
		users := make([]User, n)
		for i := range users {
			sig := units.DBm(-110 + float64(sigs[i]%61))
			users[i] = stdUser(units.KBps(rates[i]%600+100), sig, int(rates[i]%50))
		}
		slot := makeSlot(int(capRaw%300), users...)
		alloc := make([]int, n)
		r.Allocate(slot, alloc)
		if err := slot.Validate(alloc); err != nil {
			return false
		}
		for i, a := range alloc {
			if a > 0 && slot.Users[i].Sig < th {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRTMAName(t *testing.T) {
	if newRTMA(t, looseBudget).Name() != "RTMA" {
		t.Error("name mismatch")
	}
}
