package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainPerfectFairness(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Jain(equal) = %v, want 1", got)
	}
}

func TestJainWorstCase(t *testing.T) {
	// One user hogs everything: index = 1/n.
	if got := Jain([]float64{10, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Jain(one-hog, n=4) = %v, want 0.25", got)
	}
}

func TestJainEdgeCases(t *testing.T) {
	if Jain(nil) != 1 {
		t.Error("Jain(nil) != 1")
	}
	if Jain([]float64{0, 0}) != 1 {
		t.Error("Jain(zeros) != 1")
	}
}

func TestJainKnownValue(t *testing.T) {
	// (1+2+3)^2 / (3*(1+4+9)) = 36/42.
	if got := Jain([]float64{1, 2, 3}); math.Abs(got-36.0/42.0) > 1e-12 {
		t.Errorf("Jain(1,2,3) = %v, want %v", got, 36.0/42.0)
	}
}

// Property: Jain index is always in [1/n, 1] and scale-invariant.
func TestJainProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			scaled[i] = float64(r) * 7.5
		}
		j := Jain(xs)
		if j < 1/float64(len(xs))-1e-12 || j > 1+1e-12 {
			return false
		}
		return math.Abs(j-Jain(scaled)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewCDFValidation(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := NewCDF([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestCDFAt(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFQuantile(t *testing.T) {
	c, _ := NewCDF([]float64{10, 20, 30, 40, 50})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.2, 10}, {0.5, 30}, {0.9, 50}, {1, 50}, {-1, 10}, {2, 50},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	c, _ := NewCDF(xs)
	if xs[0] != 3 {
		t.Error("NewCDF sorted the caller's slice")
	}
	xs[0] = 99
	if c.Max() != 3 {
		t.Error("CDF aliased caller slice")
	}
}

func TestCDFMinMaxN(t *testing.T) {
	c, _ := NewCDF([]float64{5, -2, 7})
	if c.Min() != -2 || c.Max() != 7 || c.N() != 3 {
		t.Errorf("Min/Max/N = %v/%v/%d", c.Min(), c.Max(), c.N())
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{1, 2, 3, 4, 5})
	pts, err := c.Points(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].P != 0 || pts[4].P != 1 {
		t.Error("endpoint probabilities wrong")
	}
	if pts[0].X != 1 || pts[4].X != 5 {
		t.Error("endpoint values wrong")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X {
			t.Error("CDF points not monotone")
		}
	}
	if _, err := c.Points(1); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 4 {
		t.Errorf("P50 = %v, want 4", s.P50)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestReduction(t *testing.T) {
	if r, err := Reduction(100, 32); err != nil || math.Abs(r-0.68) > 1e-12 {
		t.Errorf("Reduction(100,32) = %v, %v", r, err)
	}
	if r, err := Reduction(100, 150); err != nil || math.Abs(r+0.5) > 1e-12 {
		t.Errorf("Reduction(100,150) = %v, %v", r, err)
	}
	if r, err := Reduction(0, 0); err != nil || r != 0 {
		t.Errorf("Reduction(0,0) = %v, %v", r, err)
	}
	if _, err := Reduction(0, 5); err == nil {
		t.Error("zero baseline with nonzero value accepted")
	}
}

func TestFlatten(t *testing.T) {
	m := [][]float64{{1, 2}, {3}, {}, {4, 5, 6}}
	got := Flatten(m)
	want := []float64{1, 2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Flatten[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(Flatten(nil)) != 0 {
		t.Error("Flatten(nil) not empty")
	}
}

func TestColumnSums(t *testing.T) {
	m := [][]float64{{1, 2, 3}, {10, 20}, {100}}
	got := ColumnSums(m)
	want := []float64{111, 22, 3}
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ColumnSums[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: At(Quantile(q)) >= q for all q in (0,1].
func TestCDFQuantileAtConsistencyProperty(t *testing.T) {
	f := func(raw []uint16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		q := (float64(qRaw) + 1) / 256.0
		return c.At(c.Quantile(q)) >= q-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
