package metrics

import (
	"fmt"
	"math"
)

// StreamingHist is a fixed-memory quantile sketch for non-negative
// samples, built for fleet-scale aggregation where retaining every
// per-user value (CDF's approach) would cost O(users) per metric per
// cell. It keeps a fixed number of equal-width bins over [0, ∞): when a
// sample lands beyond the covered range the bin width doubles and
// adjacent bin pairs collapse (nb[k] = b[2k] + b[2k+1]), so memory never
// grows and every historical count stays attributed to a bin that still
// contains it. Quantiles come back as bin midpoints clamped to the
// observed [min, max], which bounds the error against the exact
// nearest-rank CDF.Quantile by half the final bin width — the property
// tests in hist_test.go pin exactly that contract.
//
// Exact extremes (min, max), the exact sum and the exact count are
// tracked outside the bins, so Mean(), Min(), Max(), Quantile(0) and
// Quantile(1) carry no discretization error at all.
type StreamingHist struct {
	bins    []uint64
	width   float64 // current bin width; bin k covers [k·width, (k+1)·width)
	count   uint64
	dropped uint64
	sum     float64
	min     float64
	max     float64
}

// NewStreamingHist returns a histogram with the given number of bins and
// initial bin width. bins must be even (width doubling collapses bins in
// pairs) and at least 2; width must be positive and finite. The covered
// range starts at [0, bins·width) and widens automatically; the final
// quantile error bound is width/2 after the last widening, so choose
// width around (expected max / bins) to avoid widening at all.
func NewStreamingHist(bins int, width float64) (*StreamingHist, error) {
	if bins < 2 || bins%2 != 0 {
		return nil, fmt.Errorf("metrics: streaming hist needs an even bin count >= 2, got %d", bins)
	}
	if !(width > 0) || math.IsInf(width, 1) {
		return nil, fmt.Errorf("metrics: invalid streaming hist bin width %v", width)
	}
	return &StreamingHist{
		bins:  make([]uint64, bins),
		width: width,
		min:   math.Inf(1),
		max:   math.Inf(-1),
	}, nil
}

// Observe folds one sample into the histogram. NaN, infinite and
// negative values are not observable physics in this simulator (energies
// and rebuffer times are finite and non-negative by construction), so
// they are counted in Dropped rather than poisoning the sketch.
func (h *StreamingHist) Observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
		h.dropped++
		return
	}
	for x >= h.width*float64(len(h.bins)) {
		h.collapse()
	}
	h.bins[int(x/h.width)]++
	h.count++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// collapse doubles the bin width in place: nb[k] = b[2k] + b[2k+1].
// Every count previously in [2k·w, (2k+2)·w) lands in the new bin k
// covering exactly that range, so no sample is ever misattributed.
func (h *StreamingHist) collapse() {
	half := len(h.bins) / 2
	for k := 0; k < half; k++ {
		h.bins[k] = h.bins[2*k] + h.bins[2*k+1]
	}
	for k := half; k < len(h.bins); k++ {
		h.bins[k] = 0
	}
	h.width *= 2
}

// Merge folds other into h. The wider histogram's bin width wins: the
// narrower one is collapsed until the widths match (both started from
// the same NewStreamingHist parameters in any fleet aggregation, so
// widths are always power-of-two multiples of each other and alignment
// terminates). Merging histograms created with different (bins, width)
// parameters is a programming error and returns one.
func (h *StreamingHist) Merge(other *StreamingHist) error {
	if len(h.bins) != len(other.bins) {
		return fmt.Errorf("metrics: merging streaming hists with %d vs %d bins", len(h.bins), len(other.bins))
	}
	ratio := h.width / other.width
	if r := math.Log2(ratio); r != math.Trunc(r) {
		return fmt.Errorf("metrics: merging streaming hists with incommensurable widths %v vs %v", h.width, other.width)
	}
	for h.width < other.width {
		h.collapse()
	}
	// Fold a copy so `other` is left untouched.
	ob, ow := other.bins, other.width
	if ow < h.width {
		tmp := StreamingHist{bins: append([]uint64(nil), ob...), width: ow}
		for tmp.width < h.width {
			tmp.collapse()
		}
		ob = tmp.bins
	}
	for k := range h.bins {
		h.bins[k] += ob[k]
	}
	h.count += other.count
	h.dropped += other.dropped
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// copyFrom overwrites h with other's state, reusing h's bin storage.
// Both must come from the same NewStreamingHist parameters (equal bin
// counts), which every WindowedHist ring guarantees by construction.
func (h *StreamingHist) copyFrom(other *StreamingHist) {
	copy(h.bins, other.bins)
	h.width = other.width
	h.count = other.count
	h.dropped = other.dropped
	h.sum = other.sum
	h.min = other.min
	h.max = other.max
}

// foldIn accumulates other into h without touching other and without
// allocating. It requires other.width ≤ h.width with a power-of-two
// ratio (the WindowedHist invariant): collapsing other's bins down to
// h's width and then adding is the same as adding each of other's bins
// into the target bin k>>shift directly, because bin counts are plain
// uint64 sums. The counter accumulation mirrors Merge exactly.
func (h *StreamingHist) foldIn(other *StreamingHist) {
	shift := 0
	for w := other.width; w < h.width; w *= 2 {
		shift++
	}
	for k, c := range other.bins {
		if c != 0 {
			h.bins[k>>shift] += c
		}
	}
	h.count += other.count
	h.dropped += other.dropped
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Quantile returns the q-th quantile by the same nearest-rank convention
// as CDF.Quantile (rank ⌈q·n⌉), discretized to the midpoint of the bin
// holding that rank and clamped to the exact observed [min, max]. The
// result therefore differs from the exact sample quantile by at most
// BinWidth()/2 (and is exact at q ≤ 0 and q ≥ 1). An empty histogram
// returns 0.
func (h *StreamingHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for k, c := range h.bins {
		cum += c
		if cum >= rank {
			mid := (float64(k) + 0.5) * h.width
			if mid < h.min {
				return h.min
			}
			if mid > h.max {
				return h.max
			}
			return mid
		}
	}
	return h.max
}

// Count returns the number of observed (non-dropped) samples.
func (h *StreamingHist) Count() uint64 { return h.count }

// Dropped returns the number of NaN/infinite/negative samples rejected.
func (h *StreamingHist) Dropped() uint64 { return h.dropped }

// Sum returns the exact sum of observed samples.
func (h *StreamingHist) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (0 for an empty histogram).
func (h *StreamingHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the exact smallest observed sample (0 when empty).
func (h *StreamingHist) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest observed sample (0 when empty).
func (h *StreamingHist) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// BinWidth returns the current bin width — the live quantile error bound
// is half of it.
func (h *StreamingHist) BinWidth() float64 { return h.width }
