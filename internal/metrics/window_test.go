package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// histsEqual reports whether two StreamingHists hold identical state.
func histsEqual(a, b *StreamingHist) bool {
	if a.width != b.width || a.count != b.count || a.dropped != b.dropped ||
		a.sum != b.sum || a.min != b.min || a.max != b.max {
		return false
	}
	for i := range a.bins {
		if a.bins[i] != b.bins[i] {
			return false
		}
	}
	return true
}

// Window merge must equal a direct StreamingHist fed the same samples:
// the windowed sketch adds rotation bookkeeping but no statistical
// difference while every sample is still retained.
func TestWindowedHistMergeMatchesDirect(t *testing.T) {
	const windows, bins = 4, 64
	w, err := NewWindowedHist(windows, bins, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewStreamingHist(bins, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var all []float64
	// 3 rotations: all samples still retained in the 4-window ring.
	for rot := 0; rot < windows-1; rot++ {
		for i := 0; i < 500; i++ {
			x := rng.ExpFloat64() * 12
			w.Observe(x)
			direct.Observe(x)
			all = append(all, x)
		}
		if rot < windows-2 {
			w.Rotate()
		}
	}
	m := w.Merged()
	if !histsEqual(m, direct) {
		t.Fatalf("merged windowed hist != direct hist over same samples: merged{count=%d sum=%v width=%v} direct{count=%d sum=%v width=%v}",
			m.Count(), m.Sum(), m.BinWidth(), direct.Count(), direct.Sum(), direct.BinWidth())
	}
	if got, want := w.Count(), uint64(len(all)); got != want {
		t.Fatalf("windowed count = %d, want %d", got, want)
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if got, want := w.Quantile(q), direct.Quantile(q); got != want {
			t.Fatalf("q=%v: windowed %v != direct %v", q, got, want)
		}
	}
}

// Across rotations (including evictions of the oldest window) the merged
// quantile must stay within BinWidth of the exact nearest-rank quantile
// of the retained samples — the same bound StreamingHist guarantees,
// surviving the per-window width divergence that rotation can introduce.
func TestWindowedHistQuantileErrorAcrossRotation(t *testing.T) {
	const windows, bins, perWindow = 3, 32, 400
	w, err := NewWindowedHist(windows, bins, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var ring [][]float64
	for rot := 0; rot < 10; rot++ {
		if rot > 0 {
			w.Rotate()
		}
		var cur []float64
		for i := 0; i < perWindow; i++ {
			// Scale drifts per rotation so late windows force widening
			// while early retained windows keep the narrow width.
			x := rng.Float64() * 8 * float64(1+rot%4)
			w.Observe(x)
			cur = append(cur, x)
		}
		ring = append(ring, cur)
		if len(ring) > windows {
			ring = ring[1:]
		}
		var retained []float64
		for _, win := range ring {
			retained = append(retained, win...)
		}
		cdf, err := NewCDF(retained)
		if err != nil {
			t.Fatal(err)
		}
		m := w.Merged()
		bound := m.BinWidth()
		for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99} {
			got, want := m.Quantile(q), cdf.Quantile(q)
			if math.Abs(got-want) > bound {
				t.Fatalf("rotation %d q=%v: |%v - %v| > bin width %v", rot, q, got, want, bound)
			}
		}
		if got, want := m.Quantile(0), cdf.Min(); got != want {
			t.Fatalf("rotation %d: min %v != %v", rot, got, want)
		}
		if got, want := m.Quantile(1), cdf.Max(); got != want {
			t.Fatalf("rotation %d: max %v != %v", rot, got, want)
		}
		if got, want := w.Count(), uint64(len(retained)); got != want {
			t.Fatalf("rotation %d: count %d != %d", rot, got, want)
		}
	}
	if w.Retained() != windows {
		t.Fatalf("retained = %d, want %d", w.Retained(), windows)
	}
	if w.Rotations() != 9 {
		t.Fatalf("rotations = %d, want 9", w.Rotations())
	}
}

// Rotation must actually evict: once a window leaves the ring its
// samples disappear from the merged view, and the recycled storage
// starts from the initial width again.
func TestWindowedHistEviction(t *testing.T) {
	w, err := NewWindowedHist(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Observe(1000) // forces widening in window 0
	w.Rotate()
	w.Observe(1)
	w.Rotate() // evicts the widened window
	w.Observe(2)
	if got := w.Count(); got != 2 {
		t.Fatalf("count after eviction = %d, want 2", got)
	}
	m := w.Merged()
	if m.Max() != 2 || m.Min() != 1 {
		t.Fatalf("merged extremes = [%v, %v], want [1, 2]", m.Min(), m.Max())
	}
	if w.Current().BinWidth() != 1 {
		t.Fatalf("recycled window width = %v, want initial width 1", w.Current().BinWidth())
	}
}

func TestWindowedHistValidation(t *testing.T) {
	if _, err := NewWindowedHist(0, 8, 1); err == nil {
		t.Fatal("want error for 0 windows")
	}
	if _, err := NewWindowedHist(2, 3, 1); err == nil {
		t.Fatal("want error for odd bins")
	}
	if _, err := NewWindowedHist(2, 8, 0); err == nil {
		t.Fatal("want error for zero width")
	}
}

func TestStreamingHistClone(t *testing.T) {
	h, err := NewStreamingHist(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(3)
	c := h.Clone()
	c.Observe(5)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone aliases parent: parent count %d, clone count %d", h.Count(), c.Count())
	}
	if !histsEqual(h.Clone(), h) {
		t.Fatal("clone not equal to source")
	}
}

// The scratch-backed Quantile must be bit-identical to the allocating
// Merged().Quantile path even when the retained windows have diverged
// bin widths: one window stays at the initial width, one collapses far
// wider, one lands in between, and rotation keeps shifting which is
// which. mergedInto's collapse-up-front strategy differs structurally
// from Merge's incremental collapsing, so this pins their equivalence —
// sketch state included — across every misalignment the ring can reach.
func TestWindowedHistQuantileMisalignedWidths(t *testing.T) {
	const windows, bins = 3, 8
	w, err := NewWindowedHist(windows, bins, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Per-rotation sample scales: ×1 keeps the initial width, ×100 forces
	// several collapses, ×10 lands between. Cycling the scales rotates
	// which retained window is widest, narrowest and in the middle.
	scales := []float64{1, 100, 10, 100, 1, 10, 1000, 1}
	qs := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.99, 1}
	for r, scale := range scales {
		for i := 0; i < 23; i++ {
			w.Observe(scale * float64(i%7+1) / 3)
		}
		for _, q := range qs {
			want := w.Merged().Quantile(q)
			got := w.Quantile(q)
			if got != want {
				t.Fatalf("rotation %d q=%v: scratch Quantile %v != Merged().Quantile %v", r, q, got, want)
			}
		}
		// The scratch sketch itself must equal the merged sketch, not just
		// agree at the probed quantiles.
		if !histsEqual(w.scratch, w.Merged()) {
			t.Fatalf("rotation %d: scratch state diverged from Merged()", r)
		}
		w.Rotate()
	}
	// An empty live window over non-empty frozen ones (right after a
	// rotation) exercises the min=+Inf/max=-Inf copy path.
	if got, want := w.Quantile(0.5), w.Merged().Quantile(0.5); got != want {
		t.Fatalf("post-rotation q=0.5: %v != %v", got, want)
	}
}
