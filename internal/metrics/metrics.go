// Package metrics provides the statistical reductions used by the paper's
// evaluation figures: the Jain fairness index (§VI-A), empirical CDFs for
// the per-slot fairness/rebuffering/energy distributions (Figs. 2, 3, 6,
// 7), summary statistics, and relative-change helpers for the headline
// claims ("RTMA reduces at least 68% rebuffering time", "EMA achieves more
// than 27% energy reduction").
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Jain computes the Jain fairness index (Σx)² / (n·Σx²) of the sample.
// An empty or all-zero sample is defined as perfectly fair (1.0); the
// result is always within [1/n, 1] otherwise.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds the empirical CDF of xs (xs is copied). NaNs are rejected.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("metrics: empty sample")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	for _, x := range cp {
		if math.IsNaN(x) {
			return nil, fmt.Errorf("metrics: NaN in sample")
		}
	}
	sort.Float64s(cp)
	return &CDF{sorted: cp}, nil
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using the nearest-rank
// method; q outside [0,1] is clamped.
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// Min and Max return the sample extremes.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample value.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Points returns (x, P(X≤x)) pairs at k evenly spaced probability levels,
// suitable for plotting or tabulating the CDF curve. k must be ≥ 2.
func (c *CDF) Points(k int) ([]Point, error) {
	if k < 2 {
		return nil, fmt.Errorf("metrics: need at least 2 points, got %d", k)
	}
	pts := make([]Point, k)
	for i := 0; i < k; i++ {
		q := float64(i) / float64(k-1)
		pts[i] = Point{X: c.Quantile(q), P: q}
	}
	return pts, nil
}

// Point is one (value, cumulative probability) pair of a CDF curve.
type Point struct {
	X float64
	P float64
}

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N                   int
	Mean, Std, Min, Max float64
	P50, P90, P99       float64
}

// Summarize computes a Summary; it returns an error for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	c, err := NewCDF(xs)
	if err != nil {
		return Summary{}, err
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	n := float64(len(xs))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // numerical guard
	}
	return Summary{
		N:    len(xs),
		Mean: mean,
		Std:  math.Sqrt(variance),
		Min:  c.Min(),
		Max:  c.Max(),
		P50:  c.Quantile(0.5),
		P90:  c.Quantile(0.9),
		P99:  c.Quantile(0.99),
	}, nil
}

// Reduction returns the relative reduction of got versus baseline as a
// fraction: 0.68 means "got is 68% lower than baseline"; negative values
// mean got exceeds the baseline. A zero baseline with a zero value is a 0
// reduction; a zero baseline with a nonzero value is an error.
func Reduction(baseline, got float64) (float64, error) {
	if baseline == 0 {
		if got == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("metrics: reduction vs zero baseline (got %v)", got)
	}
	return 1 - got/baseline, nil
}

// Flatten concatenates a per-user matrix of samples (e.g. Result.
// RebufferSamples) into one flat sample.
func Flatten(m [][]float64) []float64 {
	total := 0
	for _, row := range m {
		total += len(row)
	}
	out := make([]float64, 0, total)
	for _, row := range m {
		out = append(out, row...)
	}
	return out
}

// ColumnSums sums a per-user matrix column-wise: out[n] = Σ_i m[i][n].
// Rows may have different lengths; missing entries count as zero.
func ColumnSums(m [][]float64) []float64 {
	maxLen := 0
	for _, row := range m {
		if len(row) > maxLen {
			maxLen = len(row)
		}
	}
	out := make([]float64, maxLen)
	for _, row := range m {
		for n, v := range row {
			out[n] += v
		}
	}
	return out
}
