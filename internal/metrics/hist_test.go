package metrics

import (
	"math"
	"testing"

	"jointstream/internal/rng"
)

// checkQuantiles asserts the StreamingHist contract against the exact
// CDF on one sample: every quantile within BinWidth of the exact
// nearest-rank answer, and exact agreement at the extremes, count, sum.
func checkQuantiles(t *testing.T, name string, xs []float64, h *StreamingHist) {
	t.Helper()
	c, err := NewCDF(xs)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if h.Count() != uint64(len(xs)) {
		t.Fatalf("%s: count %d != %d", name, h.Count(), len(xs))
	}
	if h.Min() != c.Min() || h.Max() != c.Max() {
		t.Fatalf("%s: extremes (%v,%v) != (%v,%v)", name, h.Min(), h.Max(), c.Min(), c.Max())
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if math.Abs(h.Sum()-sum) > 1e-9*math.Max(1, math.Abs(sum)) {
		t.Fatalf("%s: sum %v != %v", name, h.Sum(), sum)
	}
	tol := h.BinWidth()
	for q := 0.0; q <= 1.0; q += 0.01 {
		exact := c.Quantile(q)
		got := h.Quantile(q)
		if math.Abs(got-exact) > tol {
			t.Fatalf("%s: Quantile(%.2f) = %v, exact %v, tolerance %v (bin width %v)",
				name, q, got, exact, tol, h.BinWidth())
		}
	}
	if h.Quantile(0) != c.Quantile(0) || h.Quantile(1) != c.Quantile(1) {
		t.Fatalf("%s: extreme quantiles not exact", name)
	}
}

// TestStreamingHistQuantileProperty is the headline property test: on
// random samples from several shapes — uniform, exponential (heavy
// tail forces widening), power-of-two spikes, all-equal, single-value
// — every quantile of the sketch is within one (final) bin width of the
// exact CDF.Quantile.
func TestStreamingHistQuantileProperty(t *testing.T) {
	src := rng.New(99)
	shapes := []struct {
		name string
		gen  func(i int) float64
	}{
		{"uniform", func(int) float64 { return src.Float64() * 50 }},
		{"exponential", func(int) float64 { return -10 * math.Log(1-src.Float64()) }},
		{"powers-of-two", func(int) float64 { return math.Pow(2, float64(int(src.Float64()*16))) }},
		{"all-equal", func(int) float64 { return 7.25 }},
		{"bin-edges", func(i int) float64 { return float64(i % 64) }},
		{"tiny-then-huge", func(i int) float64 {
			if i < 900 {
				return src.Float64()
			}
			return 1e6 + src.Float64()*1e5
		}},
	}
	for _, shape := range shapes {
		for _, n := range []int{1, 3, 1000} {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = shape.gen(i)
			}
			h, err := NewStreamingHist(64, 1.0)
			if err != nil {
				t.Fatal(err)
			}
			for _, x := range xs {
				h.Observe(x)
			}
			checkQuantiles(t, shape.name, xs, h)
		}
	}
}

// TestStreamingHistMerge: merging per-shard sketches equals observing
// the concatenated sample — including when the shards widened to
// different bin widths before the merge.
func TestStreamingHistMerge(t *testing.T) {
	src := rng.New(123)
	var all []float64
	merged, err := NewStreamingHist(32, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	scales := []float64{1, 100, 3, 4000} // force unequal widening per shard
	for _, scale := range scales {
		shard, err := NewStreamingHist(32, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			x := src.Float64() * scale
			all = append(all, x)
			shard.Observe(x)
		}
		if err := merged.Merge(shard); err != nil {
			t.Fatal(err)
		}
	}
	checkQuantiles(t, "merged", all, merged)

	direct, err := NewStreamingHist(32, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range all {
		direct.Observe(x)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if merged.Quantile(q) != direct.Quantile(q) {
			t.Fatalf("Quantile(%v): merged %v != direct %v", q, merged.Quantile(q), direct.Quantile(q))
		}
	}

	other, err := NewStreamingHist(16, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(other); err == nil {
		t.Fatal("merged sketches with different bin counts")
	}
}

// TestStreamingHistDropsNonPhysical: NaN, ±Inf and negative samples are
// rejected into Dropped without disturbing the sketch.
func TestStreamingHistDropsNonPhysical(t *testing.T) {
	h, err := NewStreamingHist(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(2)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.001} {
		h.Observe(x)
	}
	if h.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", h.Dropped())
	}
	if h.Count() != 1 || h.Sum() != 2 || h.Min() != 2 || h.Max() != 2 {
		t.Fatal("dropped samples disturbed the sketch")
	}
	if h.BinWidth() != 1 {
		t.Fatal("dropped samples widened the bins")
	}
}

// TestStreamingHistEmptyAndValidation pins the empty-sketch conventions
// and constructor guards.
func TestStreamingHistEmptyAndValidation(t *testing.T) {
	h, err := NewStreamingHist(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty sketch should report zeros")
	}
	for _, bad := range []struct {
		bins  int
		width float64
	}{{0, 1}, {3, 1}, {-2, 1}, {4, 0}, {4, -1}, {4, math.NaN()}, {4, math.Inf(1)}} {
		if _, err := NewStreamingHist(bad.bins, bad.width); err == nil {
			t.Fatalf("NewStreamingHist(%d, %v) accepted", bad.bins, bad.width)
		}
	}
}
