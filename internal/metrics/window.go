package metrics

import (
	"fmt"
	"math"
)

// WindowedHist is a sliding-window quantile sketch: a ring of
// StreamingHists, one per window, of which the newest is live and the
// rest are frozen snapshots. Observations land in the live window;
// Rotate freezes it and recycles the oldest window's storage for the
// next one. Merged/Quantile answer over every retained window, so an
// open-system run can report "p99 rebuffering over the last K windows"
// without ever finalizing the run — exactly the ROADMAP item-2 shape.
//
// All windows are created with the same (bins, width) parameters, so
// their widths stay power-of-two multiples of each other and Merge can
// never fail on alignment; WindowedHist exploits that to offer
// error-free snapshot accessors.
type WindowedHist struct {
	windows []*StreamingHist
	width   float64 // initial bin width each fresh window starts from
	head    int     // ring index of the live window
	filled  int     // retained windows, live included (≤ len(windows))
	rotated uint64  // total Rotate calls — a window epoch counter
	// scratch backs the allocation-free Quantile path: mergedInto
	// overwrites it with the sliding aggregate on every call, so it never
	// escapes and the open-system tick loop can take window quantiles at
	// zero steady-state allocations. Lazily built on first Quantile.
	scratch *StreamingHist
}

// NewWindowedHist returns a sliding sketch retaining the given number of
// windows (≥ 1), each a StreamingHist with the given bins and width (the
// same validity rules as NewStreamingHist apply).
func NewWindowedHist(windows, bins int, width float64) (*WindowedHist, error) {
	if windows < 1 {
		return nil, fmt.Errorf("metrics: windowed hist needs >= 1 window, got %d", windows)
	}
	w := &WindowedHist{
		windows: make([]*StreamingHist, windows),
		width:   width,
		filled:  1,
	}
	for i := range w.windows {
		h, err := NewStreamingHist(bins, width)
		if err != nil {
			return nil, err
		}
		w.windows[i] = h
	}
	return w, nil
}

// Observe folds one sample into the live window.
func (w *WindowedHist) Observe(x float64) { w.windows[w.head].Observe(x) }

// Rotate freezes the live window and starts a fresh one, dropping the
// oldest retained window once the ring is full. With a single-window
// ring, Rotate simply resets the sketch.
func (w *WindowedHist) Rotate() {
	w.head = (w.head + 1) % len(w.windows)
	w.windows[w.head].reset(w.width)
	if w.filled < len(w.windows) {
		w.filled++
	}
	w.rotated++
}

// Current returns the live window. The caller must not retain it across
// a Rotate (its storage is recycled); use Merged for durable snapshots.
func (w *WindowedHist) Current() *StreamingHist { return w.windows[w.head] }

// Merged returns an independent StreamingHist holding every retained
// window's samples — the sliding-window aggregate.
func (w *WindowedHist) Merged() *StreamingHist {
	out := w.windows[w.head].Clone()
	for k := 1; k < w.filled; k++ {
		idx := (w.head - k + len(w.windows)) % len(w.windows)
		// Same (bins, initial width) by construction: Merge cannot fail.
		if err := out.Merge(w.windows[idx]); err != nil {
			panic("metrics: windowed hist merge: " + err.Error())
		}
	}
	return out
}

// Quantile returns the q-th quantile over every retained window, with
// the same contract (and error bound) as StreamingHist.Quantile on the
// merged sketch. The merge lands in an internal scratch sketch, so
// repeated calls allocate nothing after the first; the value returned
// is identical to Merged().Quantile(q) (window_test.go pins it,
// bin-width misalignment included).
func (w *WindowedHist) Quantile(q float64) float64 {
	if w.scratch == nil {
		w.scratch = w.windows[w.head].Clone()
	}
	w.mergedInto(w.scratch)
	return w.scratch.Quantile(q)
}

// mergedInto overwrites dst with the merge of every retained window —
// the same state Merged() builds — reusing dst's bin storage. The
// incremental Merge loop collapses whichever side is narrower as it
// goes; because bin counts, the count/dropped/sum accumulators and the
// min/max folds are all order-insensitive given the same final width
// (uint64 sums, float adds in the identical window order), collapsing
// dst to the widest retained width up front and then folding each older
// window with a shift produces bit-identical bins and counters.
func (w *WindowedHist) mergedInto(dst *StreamingHist) {
	head := w.windows[w.head]
	maxW := head.width
	for k := 1; k < w.filled; k++ {
		idx := (w.head - k + len(w.windows)) % len(w.windows)
		if hw := w.windows[idx].width; hw > maxW {
			maxW = hw
		}
	}
	dst.copyFrom(head)
	for dst.width < maxW {
		dst.collapse()
	}
	for k := 1; k < w.filled; k++ {
		idx := (w.head - k + len(w.windows)) % len(w.windows)
		dst.foldIn(w.windows[idx])
	}
}

// Count returns the observed samples across every retained window.
func (w *WindowedHist) Count() uint64 {
	var n uint64
	for k := 0; k < w.filled; k++ {
		idx := (w.head - k + len(w.windows)) % len(w.windows)
		n += w.windows[idx].Count()
	}
	return n
}

// Retained returns how many windows currently hold data (live included).
func (w *WindowedHist) Retained() int { return w.filled }

// Rotations returns the total number of Rotate calls — a monotone window
// epoch counter for snapshot labeling.
func (w *WindowedHist) Rotations() uint64 { return w.rotated }

// Clone returns an independent copy of the histogram.
func (h *StreamingHist) Clone() *StreamingHist {
	c := *h
	c.bins = append([]uint64(nil), h.bins...)
	return &c
}

// reset returns the histogram to its freshly-constructed state with the
// given initial width, reusing the bin storage.
func (h *StreamingHist) reset(width float64) {
	for i := range h.bins {
		h.bins[i] = 0
	}
	h.width = width
	h.count = 0
	h.dropped = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}
