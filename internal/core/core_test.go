package core

import (
	"testing"

	"jointstream/internal/cell"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// quickConfig returns a small, fast scenario.
func quickConfig(mode Mode) Config {
	cellCfg := cell.PaperConfig()
	cellCfg.Capacity = 3000
	cellCfg.MaxSlots = 1500
	wl := workload.PaperDefaults(6)
	wl.SizeMin = 8 * units.Megabyte
	wl.SizeMax = 16 * units.Megabyte
	// Sessions here last ~50 slots instead of ~1500; scale the channel
	// fade period down with them so each session still spans multiple
	// good/bad phases like the paper-scale workload does.
	wl.Signal.PeriodSlots = 24
	return Config{
		Mode:             mode,
		Cell:             cellCfg,
		Workload:         wl,
		Seed:             7,
		CalibrationSteps: 4,
	}
}

func TestModeString(t *testing.T) {
	if ModeRTM.String() != "RTM" || ModeEM.String() != "EM" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string wrong")
	}
}

func TestRunRTM(t *testing.T) {
	rep, err := Run(quickConfig(ModeRTM))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != ModeRTM {
		t.Errorf("mode = %v", rep.Mode)
	}
	if rep.Result.Scheduler != "RTMA" || rep.Reference.Scheduler != "Default" {
		t.Errorf("schedulers = %q vs %q", rep.Result.Scheduler, rep.Reference.Scheduler)
	}
	if rep.Phi <= 0 {
		t.Errorf("Phi = %v", rep.Phi)
	}
	if rep.Result.Slots <= 0 || rep.Reference.Slots <= 0 {
		t.Error("missing slot counts")
	}
	// RTM mode must cut rebuffering versus the default under contention.
	if rep.RebufferReduction <= 0 {
		t.Errorf("RebufferReduction = %v, want > 0", rep.RebufferReduction)
	}
}

func TestRunEM(t *testing.T) {
	rep, err := Run(quickConfig(ModeEM))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Scheduler != "EMA" {
		t.Errorf("scheduler = %q", rep.Result.Scheduler)
	}
	if rep.V <= 0 {
		t.Errorf("V = %v", rep.V)
	}
	if rep.Omega <= 0 {
		t.Errorf("Omega = %v", rep.Omega)
	}
	// EM mode must save energy versus the default.
	if rep.EnergyReduction <= 0 {
		t.Errorf("EnergyReduction = %v, want > 0", rep.EnergyReduction)
	}
	// And keep rebuffering within the bound (PC ≤ Ω), with slack for the
	// coarse quick calibration.
	if float64(rep.Result.PC) > float64(rep.Omega)*1.05 {
		t.Errorf("PC %v exceeds Omega %v", rep.Result.PC, rep.Omega)
	}
}

func TestRunEMWithExplicitV(t *testing.T) {
	cfg := quickConfig(ModeEM)
	cfg.V = 0.3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.V != 0.3 {
		t.Errorf("V = %v, want explicit 0.3", rep.V)
	}
}

func TestRunRTMWithAbsoluteBudget(t *testing.T) {
	cfg := quickConfig(ModeRTM)
	cfg.Budget = 900
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phi != 900 {
		t.Errorf("Phi = %v, want 900", rep.Phi)
	}
	if rep.Threshold < -110 || rep.Threshold > -49 {
		t.Errorf("threshold %v out of range", rep.Threshold)
	}
}

func TestRunValidation(t *testing.T) {
	bad := []Config{
		{Mode: Mode(9)},
		{Mode: ModeRTM, Alpha: -1},
		{Mode: ModeEM, Beta: -1},
		{Mode: ModeEM, V: -1},
		{Mode: ModeRTM, Users: -3},
		{Mode: ModeRTM, CalibrationSteps: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	// A zero-ish config should pick paper defaults and still run; use a
	// trimmed workload for speed.
	cfg := Config{Mode: ModeRTM}
	cfg.Workload = workload.PaperDefaults(3)
	cfg.Workload.SizeMin = 5 * units.Megabyte
	cfg.Workload.SizeMax = 10 * units.Megabyte
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Slots == 0 {
		t.Error("defaulted run produced no slots")
	}
}

func TestNewScheduler(t *testing.T) {
	rtCfg := quickConfig(ModeRTM)
	rtCfg.Budget = 900
	s, err := NewScheduler(rtCfg)
	if err != nil || s.Name() != "RTMA" {
		t.Errorf("NewScheduler(RTM) = %v, %v", s, err)
	}
	emCfg := quickConfig(ModeEM)
	emCfg.V = 0.5
	s, err = NewScheduler(emCfg)
	if err != nil || s.Name() != "EMA" {
		t.Errorf("NewScheduler(EM) = %v, %v", s, err)
	}
	// Missing required parameters.
	if _, err := NewScheduler(quickConfig(ModeRTM)); err == nil {
		t.Error("RTM without budget accepted")
	}
	if _, err := NewScheduler(quickConfig(ModeEM)); err == nil {
		t.Error("EM without V accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickConfig(ModeRTM))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig(ModeRTM))
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.MeanEnergyPerUser != b.Result.MeanEnergyPerUser ||
		a.Result.MeanRebufferPerUser != b.Result.MeanRebufferPerUser {
		t.Error("same-seed core runs diverged")
	}
}

func TestRunEMAdaptive(t *testing.T) {
	cfg := quickConfig(ModeEM)
	cfg.Adaptive = true
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.Scheduler != "AdaptiveEMA" {
		t.Errorf("scheduler = %q", rep.Result.Scheduler)
	}
	if rep.V <= 0 {
		t.Errorf("final adapted V = %v", rep.V)
	}
	// The online controller should still save energy versus Default.
	if rep.EnergyReduction <= 0 {
		t.Errorf("adaptive EnergyReduction = %v, want > 0", rep.EnergyReduction)
	}
	// And track the stall budget within a reasonable factor (online
	// adaptation is looser than offline calibration).
	if float64(rep.Result.PC) > float64(rep.Omega)*3 {
		t.Errorf("adaptive PC %v far above Omega %v", rep.Result.PC, rep.Omega)
	}
}
