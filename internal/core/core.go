// Package core is the top-level facade of the jointstream library: the
// paper's two-mode scheduling framework behind a single Run call.
//
// The framework operates in one of two complementary modes (§III-A):
//
//   - ModeRTM — Rebuffering Time Minimization: run RTMA to minimize
//     average rebuffering while capping energy at Φ = Alpha × the measured
//     Default-strategy energy (or an absolute Budget).
//   - ModeEM — Energy Minimization: run EMA to minimize energy while
//     keeping average rebuffering within Ω = Beta × the measured
//     Default-strategy rebuffering (or an absolute Omega), calibrating
//     the Lyapunov weight V automatically unless one is given.
//
// Run simulates the configured multi-user scenario and returns a Report
// with the mode's result side by side with the Default reference run, so
// callers immediately see the achieved trade-off. For driving a live
// pipeline instead of a simulation, NewScheduler builds the same
// algorithm for use with internal/gateway.
package core

import (
	"fmt"
	"math"

	"jointstream/internal/cell"
	"jointstream/internal/rng"
	"jointstream/internal/sched"
	"jointstream/internal/units"
	"jointstream/internal/workload"
)

// Mode selects the framework's operating mode.
type Mode int

// The two complementary scheduler modes.
const (
	// ModeRTM minimizes rebuffering under an energy budget (RTMA).
	ModeRTM Mode = iota
	// ModeEM minimizes energy under a rebuffering bound (EMA).
	ModeEM
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeRTM:
		return "RTM"
	case ModeEM:
		return "EM"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one framework run.
type Config struct {
	// Mode selects RTM or EM.
	Mode Mode

	// Alpha scales the measured Default energy into RTMA's budget Φ
	// (ModeRTM). Ignored when Budget is set. Defaults to 1.
	Alpha float64
	// Budget is an absolute per-user per-slot energy budget Φ in mJ
	// (ModeRTM); when zero, Φ is derived from Alpha.
	Budget units.MJ

	// Beta scales the measured Default rebuffering into EMA's bound Ω
	// (ModeEM). Ignored when Omega or V is set. Defaults to 1.
	Beta float64
	// Omega is an absolute average-rebuffering bound in seconds (ModeEM).
	Omega units.Seconds
	// V fixes the Lyapunov weight directly, skipping calibration (ModeEM).
	V float64
	// Adaptive switches ModeEM to the AdaptiveEMA scheduler, which tracks
	// Omega online (multiplicative V adjustment) instead of requiring the
	// offline bisection; V and CalibrationSteps are then ignored.
	Adaptive bool
	// CalibrationSteps bounds the V bisection (default 8).
	CalibrationSteps int

	// Cell configures the simulator; zero value means cell.PaperConfig().
	Cell cell.Config
	// Workload configures the sessions; zero value means
	// workload.PaperDefaults(Users).
	Workload workload.Config
	// Users is the session count when Workload is zero (default 20).
	Users int
	// Seed drives all randomness (default 1).
	Seed uint64
}

// normalize fills defaults.
func (c Config) normalize() (Config, error) {
	if c.Mode != ModeRTM && c.Mode != ModeEM {
		return c, fmt.Errorf("core: unknown mode %d", int(c.Mode))
	}
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Beta == 0 {
		c.Beta = 1
	}
	if c.Alpha < 0 || math.IsNaN(c.Alpha) {
		return c, fmt.Errorf("core: invalid alpha %v", c.Alpha)
	}
	if c.Beta < 0 || math.IsNaN(c.Beta) {
		return c, fmt.Errorf("core: invalid beta %v", c.Beta)
	}
	if c.V < 0 || math.IsNaN(c.V) {
		return c, fmt.Errorf("core: invalid V %v", c.V)
	}
	if c.CalibrationSteps == 0 {
		c.CalibrationSteps = 8
	}
	if c.CalibrationSteps < 1 {
		return c, fmt.Errorf("core: invalid calibration steps %d", c.CalibrationSteps)
	}
	if c.Users == 0 {
		c.Users = 20
	}
	if c.Users < 0 {
		return c, fmt.Errorf("core: invalid user count %d", c.Users)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cell.Tau == 0 && c.Cell.Capacity == 0 {
		c.Cell = cell.PaperConfig()
	}
	if err := c.Cell.Validate(); err != nil {
		return c, err
	}
	if c.Workload.Users == 0 {
		c.Workload = workload.PaperDefaults(c.Users)
	}
	if err := c.Workload.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// ModeResult summarizes one scheduler's run.
type ModeResult struct {
	// Scheduler names the algorithm.
	Scheduler string
	// Slots is the simulated horizon Γ.
	Slots int
	// MeanRebufferPerUser is the total stall time averaged over users.
	MeanRebufferPerUser units.Seconds
	// MeanEnergyPerUser is the total energy averaged over users (mJ).
	MeanEnergyPerUser units.MJ
	// TailEnergyPerUser is the tail share of MeanEnergyPerUser (mJ).
	TailEnergyPerUser units.MJ
	// PC and PE are the paper's per-user per-slot averages.
	PC units.Seconds
	PE units.MJ
}

func summarize(res *cell.Result) ModeResult {
	n := len(res.Users)
	return ModeResult{
		Scheduler:           res.SchedulerName,
		Slots:               res.Slots,
		MeanRebufferPerUser: res.MeanRebufferPerUser(),
		MeanEnergyPerUser:   res.MeanEnergyPerUser(),
		TailEnergyPerUser:   res.TotalTailEnergy() / units.MJ(n),
		PC:                  res.PC(),
		PE:                  res.PE(),
	}
}

// Report is the outcome of a framework run.
type Report struct {
	// Mode echoes the configured mode.
	Mode Mode
	// Result is the mode scheduler's run.
	Result ModeResult
	// Reference is the Default-strategy run on the same workload.
	Reference ModeResult
	// Phi is the derived RTMA energy budget (ModeRTM only).
	Phi units.MJ
	// Threshold is RTMA's derived signal admission threshold (ModeRTM).
	Threshold units.DBm
	// Omega is the derived rebuffering bound (ModeEM only).
	Omega units.Seconds
	// V is the Lyapunov weight used (ModeEM only).
	V float64
	// RebufferReduction and EnergyReduction are relative improvements
	// over the reference (positive = better).
	RebufferReduction float64
	EnergyReduction   float64
}

// Run executes the framework in the configured mode.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	simulate := func(s sched.Scheduler) (*cell.Result, error) {
		wl, err := workload.Generate(cfg.Workload, rng.New(cfg.Seed))
		if err != nil {
			return nil, err
		}
		sim, err := cell.New(cfg.Cell, wl, s)
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}

	ref, err := simulate(sched.NewDefault())
	if err != nil {
		return nil, fmt.Errorf("core: reference run: %w", err)
	}
	rep := &Report{Mode: cfg.Mode, Reference: summarize(ref)}

	switch cfg.Mode {
	case ModeRTM:
		budget := cfg.Budget
		if budget == 0 {
			budget, err = sched.BudgetForAlpha(ref.TransEnergyPerActiveSlot(), cfg.Alpha)
			if err != nil {
				return nil, err
			}
		}
		rt, err := sched.NewRTMA(sched.RTMAConfig{
			Budget: budget, Radio: cfg.Cell.Radio, RRC: cfg.Cell.RRC,
		})
		if err != nil {
			return nil, err
		}
		res, err := simulate(rt)
		if err != nil {
			return nil, err
		}
		rep.Result = summarize(res)
		rep.Phi = budget
		rep.Threshold = rt.Threshold()

	case ModeEM:
		omega := cfg.Omega
		if omega == 0 {
			omega = units.Seconds(float64(ref.PC()) * cfg.Beta)
		}
		rep.Omega = omega
		if cfg.Adaptive {
			ae, err := sched.NewAdaptiveEMA(sched.AdaptiveEMAConfig{
				Omega: omega, RRC: cfg.Cell.RRC,
			})
			if err != nil {
				return nil, err
			}
			res, err := simulate(ae)
			if err != nil {
				return nil, err
			}
			rep.Result = summarize(res)
			rep.V = ae.V() // final adapted weight
			break
		}
		v := cfg.V
		if v == 0 {
			v, err = calibrateV(cfg, simulate, omega)
			if err != nil {
				return nil, err
			}
		}
		em, err := sched.NewEMA(sched.EMAConfig{V: v, RRC: cfg.Cell.RRC})
		if err != nil {
			return nil, err
		}
		res, err := simulate(em)
		if err != nil {
			return nil, err
		}
		rep.Result = summarize(res)
		rep.V = v
	}

	rep.RebufferReduction = reduction(float64(rep.Reference.MeanRebufferPerUser), float64(rep.Result.MeanRebufferPerUser))
	rep.EnergyReduction = reduction(float64(rep.Reference.MeanEnergyPerUser), float64(rep.Result.MeanEnergyPerUser))
	return rep, nil
}

// calibrateV bisects the Lyapunov weight so measured PC ≤ omega, mirroring
// internal/experiments.
func calibrateV(cfg Config, simulate func(sched.Scheduler) (*cell.Result, error), omega units.Seconds) (float64, error) {
	lo, hi := 0.005, 16.0
	pcAt := func(v float64) (units.Seconds, error) {
		em, err := sched.NewEMA(sched.EMAConfig{V: v, RRC: cfg.Cell.RRC})
		if err != nil {
			return 0, err
		}
		res, err := simulate(em)
		if err != nil {
			return 0, err
		}
		return res.PC(), nil
	}
	pcLo, err := pcAt(lo)
	if err != nil {
		return 0, err
	}
	if pcLo > omega {
		return lo, nil
	}
	pcHi, err := pcAt(hi)
	if err != nil {
		return 0, err
	}
	if pcHi <= omega {
		return hi, nil
	}
	for i := 0; i < cfg.CalibrationSteps; i++ {
		mid := math.Sqrt(lo * hi)
		pc, err := pcAt(mid)
		if err != nil {
			return 0, err
		}
		if pc <= omega {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

func reduction(baseline, got float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 1 - got/baseline
}

// NewScheduler builds the mode's scheduling algorithm with explicit
// parameters, for embedding in a live gateway (internal/gateway) rather
// than the simulator. ModeRTM requires Budget; ModeEM requires V.
func NewScheduler(cfg Config) (sched.Scheduler, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	switch cfg.Mode {
	case ModeRTM:
		if cfg.Budget <= 0 {
			return nil, fmt.Errorf("core: ModeRTM NewScheduler needs an absolute Budget")
		}
		return sched.NewRTMA(sched.RTMAConfig{
			Budget: cfg.Budget, Radio: cfg.Cell.Radio, RRC: cfg.Cell.RRC,
		})
	case ModeEM:
		if cfg.V <= 0 {
			return nil, fmt.Errorf("core: ModeEM NewScheduler needs an explicit V")
		}
		return sched.NewEMA(sched.EMAConfig{V: cfg.V, RRC: cfg.Cell.RRC})
	default:
		return nil, fmt.Errorf("core: unknown mode %d", int(cfg.Mode))
	}
}
