package gateway

import (
	"encoding/json"
	"net/http/httptest"
	"testing"

	"jointstream/internal/rrc"
	"jointstream/internal/sched"
)

func monitoredGateway(t *testing.T) (*Gateway, *LocalEndpoint) {
	t.Helper()
	cfg := testConfig()
	cfg.RRC = rrc.Paper3G()
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := attachUser(t, g, 1000, 400, -60)
	return g, ep
}

func TestHTTPHealthz(t *testing.T) {
	g, _ := monitoredGateway(t)
	srv := httptest.NewServer(Handler(g))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestHTTPStats(t *testing.T) {
	g, ep := monitoredGateway(t)
	for i := 0; i < 5 && !g.AllDone(); i++ {
		g.Step()
		ep.Advance()
	}
	srv := httptest.NewServer(Handler(g))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Fatalf("got %d users", len(all))
	}
	if all[0]["sent_kb"].(float64) <= 0 {
		t.Errorf("no bytes reported: %v", all[0])
	}
	if all[0]["trans_energy_mj"].(float64) <= 0 {
		t.Errorf("no energy reported: %v", all[0])
	}

	// Single-user query.
	resp2, err := srv.Client().Get(srv.URL + "/stats?user=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var one map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one["id"].(float64) != 0 {
		t.Errorf("wrong user: %v", one)
	}
}

func TestHTTPStatsErrors(t *testing.T) {
	g, _ := monitoredGateway(t)
	srv := httptest.NewServer(Handler(g))
	defer srv.Close()
	for path, want := range map[string]int{
		"/stats?user=abc": 400,
		"/stats?user=99":  404,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestHTTPSummary(t *testing.T) {
	g, ep := monitoredGateway(t)
	for i := 0; i < 10 && !g.AllDone(); i++ {
		g.Step()
		ep.Advance()
	}
	srv := httptest.NewServer(Handler(g))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sum map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum["users"].(float64) != 1 {
		t.Errorf("summary users = %v", sum["users"])
	}
	if sum["scheduler"].(string) != "Default" {
		t.Errorf("scheduler = %v", sum["scheduler"])
	}
	if sum["all_done"].(bool) != true {
		t.Errorf("all_done = %v (slot %v)", sum["all_done"], sum["slot"])
	}
	if sum["sent_kb"].(float64) != 1000 {
		t.Errorf("sent_kb = %v", sum["sent_kb"])
	}
}

func TestHTTPSessionWindowedMetrics(t *testing.T) {
	g, ep := monitoredGateway(t)
	for i := 0; i < 10 && !g.AllDone(); i++ {
		g.Step()
		ep.Advance()
	}
	// One extra tick so the completion reached above is folded into the
	// session histograms (folding runs at the end of each Step).
	g.Step()

	m := g.SessionWindowMetrics()
	if m.EndedTotal != 1 || m.EndedWindow != 1 {
		t.Fatalf("ended = %d total / %d window, want 1/1", m.EndedTotal, m.EndedWindow)
	}
	if m.EnergyP50MJ <= 0 || m.EnergyP99MJ < m.EnergyP50MJ {
		t.Errorf("energy quantiles p50=%v p99=%v", m.EnergyP50MJ, m.EnergyP99MJ)
	}
	if m.RebufP50Sec < 0 || m.RebufP99Sec < m.RebufP50Sec {
		t.Errorf("rebuffer quantiles p50=%v p99=%v", m.RebufP50Sec, m.RebufP99Sec)
	}

	srv := httptest.NewServer(Handler(g))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var mv map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mv); err != nil {
		t.Fatal(err)
	}
	if mv["sessions_ended_total"].(float64) != 1 {
		t.Errorf("sessions_ended_total = %v", mv["sessions_ended_total"])
	}
	if mv["energy_p50_mj"].(float64) != m.EnergyP50MJ {
		t.Errorf("energy_p50_mj = %v, want %v", mv["energy_p50_mj"], m.EnergyP50MJ)
	}
	for _, k := range []string{"rebuffer_p50_sec", "rebuffer_p99_sec", "energy_p99_mj", "tick_p50_ms", "tick_p99_ms"} {
		if _, ok := mv[k]; !ok {
			t.Errorf("metrics missing field %q: %v", k, mv)
		}
	}
}

func TestSessionMetricsFoldOnDetach(t *testing.T) {
	g, _ := monitoredGateway(t)
	g.Step()
	g.mu.Lock()
	u := g.users[0]
	g.detach(u, DetachShed)
	g.detach(u, DetachShed) // idempotent: must not fold twice
	g.mu.Unlock()
	if m := g.SessionWindowMetrics(); m.EndedTotal != 1 {
		t.Fatalf("ended total = %d after detach, want 1", m.EndedTotal)
	}
}

func TestHandlerPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Handler(nil)
}
