package gateway

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"jointstream/internal/metrics"
	"jointstream/internal/units"
)

// This file is the gateway's open-system serving layer: the admission
// controller, the overload shedder and the graceful drain — the three
// mechanisms that keep a long-running gateway inside its capacity
// envelope instead of degrading every session a little when churn pushes
// it past the paper's closed-world assumptions.
//
//   - Admission control (Attach): a cap on concurrent in-service
//     sessions plus an Eq.-1-style headroom check — the summed required
//     rates of everyone in service, plus the newcomer's, must fit inside
//     AdmitHeadroomFrac × Capacity. Refusals are typed
//     (*OverCapacityError, matching ErrOverCapacity) so callers can
//     answer "come back later" instead of "broken".
//
//   - Load shedding (Step): when the tick-deadline miss rate over the
//     recent Policy.ShedMissWindowSlots slots crosses
//     Policy.ShedMissThreshold, up to Policy.ShedMaxPerSlot sessions are
//     detached — lowest playback buffer first (they are rebuffering
//     already; the grants they consume save the most viewers elsewhere),
//     newest on ties. Shed sessions get DetachShed and are counted in
//     Diag.Shed.
//
//   - Graceful drain (BeginDrain): the gateway stops admitting (Attach
//     returns ErrDraining), keeps serving everything in flight, and
//     Drained reports when the last session finished or detached —
//     cmd/jstream-gateway wires SIGTERM to exactly this sequence.
//
// Step also feeds a sliding-window histogram of wall-clock tick
// durations (TickQuantileMs), so deadline pressure is observable as a
// p99 before the shedder has to act on it.

// ErrOverCapacity is the sentinel every admission rejection matches via
// errors.Is; the concrete error is a *OverCapacityError.
var ErrOverCapacity = errors.New("gateway: over capacity")

// ErrDraining rejects attachments while the gateway is draining.
var ErrDraining = errors.New("gateway: draining, not admitting sessions")

// OverCapacityError reports an admission rejection.
type OverCapacityError struct {
	// Reason is "session-cap" or "headroom".
	Reason string
	// InService and MaxSessions describe the session-cap rejection.
	InService, MaxSessions int
	// DemandKBps and LimitKBps describe the headroom rejection.
	DemandKBps, LimitKBps units.KBps
}

func (e *OverCapacityError) Error() string {
	if e.Reason == "session-cap" {
		return fmt.Sprintf("gateway: admission rejected: %d sessions in service at cap %d", e.InService, e.MaxSessions)
	}
	return fmt.Sprintf("gateway: admission rejected: demand %v KB/s exceeds headroom %v KB/s", e.DemandKBps, e.LimitKBps)
}

// Is makes errors.Is(err, ErrOverCapacity) match.
func (e *OverCapacityError) Is(target error) bool { return target == ErrOverCapacity }

// tickHistWindowSlots is how many slots each tick-duration histogram
// window spans before rotating.
const tickHistWindowSlots = 256

// inService reports whether a user still occupies serving capacity:
// attached and not finished. Callers hold g.mu.
func (g *Gateway) userInService(u *user) bool {
	return !u.detached && !(u.srcDone && len(u.queue) == 0 && !u.inFlight)
}

// admissible applies the admission controller to a prospective session
// with the given required rate. Callers hold g.mu.
func (g *Gateway) admissible(rate units.KBps) error {
	if g.draining {
		return ErrDraining
	}
	cap, frac := g.cfg.MaxSessions, g.cfg.AdmitHeadroomFrac
	if cap <= 0 && frac <= 0 {
		return nil
	}
	inService := 0
	var demand units.KBps
	for _, u := range g.users {
		if !g.userInService(u) {
			continue
		}
		inService++
		if u.haveReport {
			demand += u.lastReport.Rate
		}
	}
	if cap > 0 && inService >= cap {
		return &OverCapacityError{Reason: "session-cap", InService: inService, MaxSessions: cap}
	}
	if frac > 0 {
		limit := units.KBps(frac * float64(g.cfg.Capacity))
		if demand+rate > limit {
			return &OverCapacityError{Reason: "headroom", DemandKBps: demand + rate, LimitKBps: limit}
		}
	}
	return nil
}

// BeginDrain switches the gateway into drain mode: Attach rejects with
// ErrDraining, in-flight sessions keep being served, and Drained reports
// when the last one is finished or detached. Idempotent.
func (g *Gateway) BeginDrain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.draining = true
}

// Draining reports whether BeginDrain was called.
func (g *Gateway) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Drained reports whether the gateway is draining and every session has
// finished or detached. A never-draining or empty-but-serving gateway
// returns false.
func (g *Gateway) Drained() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.draining {
		return false
	}
	for _, u := range g.users {
		if g.userInService(u) {
			return false
		}
	}
	return true
}

// noteTick records one completed Step: its wall duration into the
// sliding tick histogram, and whether it missed the slot deadline into
// the shedder's window. Callers hold g.mu.
func (g *Gateway) noteTick(d time.Duration, missed bool) {
	if g.tickHist != nil {
		g.tickHist.Observe(float64(d) / float64(time.Millisecond))
		g.tickHistSlots++
		if g.tickHistSlots >= tickHistWindowSlots {
			g.tickHist.Rotate()
			g.rebufHist.Rotate()
			g.energyHist.Rotate()
			g.tickHistSlots = 0
		}
	}
	w := g.policy.ShedMissWindowSlots
	if g.policy.ShedMaxPerSlot <= 0 || w <= 0 {
		return
	}
	if len(g.missRing) != w {
		g.missRing = make([]bool, w)
		g.missHead, g.missCount = 0, 0
	}
	if g.missRing[g.missHead] {
		g.missCount--
	}
	g.missRing[g.missHead] = missed
	if missed {
		g.missCount++
	}
	g.missHead = (g.missHead + 1) % w
}

// maybeShed detaches up to Policy.ShedMaxPerSlot sessions when the
// recent deadline-miss count crosses the threshold: lowest playback
// buffer first (already rebuffering; their grants buy the most relief),
// newest on ties. The miss window resets after a shed so one overload
// burst sheds once, not every following slot. Callers hold g.mu.
func (g *Gateway) maybeShed() {
	p := g.policy
	if p.ShedMaxPerSlot <= 0 || g.missCount < p.ShedMissThreshold {
		return
	}
	var cands []*user
	for _, u := range g.users {
		if g.userInService(u) {
			cands = append(cands, u)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bufferSec != cands[j].bufferSec {
			return cands[i].bufferSec < cands[j].bufferSec
		}
		return cands[i].id > cands[j].id
	})
	n := p.ShedMaxPerSlot
	if n > len(cands) {
		n = len(cands)
	}
	for k := 0; k < n; k++ {
		g.diag.Shed++
		g.detach(cands[k], DetachShed)
	}
	for i := range g.missRing {
		g.missRing[i] = false
	}
	g.missCount = 0
}

// countDrained credits sessions that reached their natural end while the
// gateway drains. Callers hold g.mu.
func (g *Gateway) countDrained() {
	if !g.draining {
		return
	}
	for _, u := range g.users {
		if !u.detached && !u.drainCounted && u.srcDone && len(u.queue) == 0 && !u.inFlight {
			u.drainCounted = true
			g.diag.Drained++
		}
	}
}

// TickQuantileMs returns the q-th quantile of Step wall-clock duration
// in milliseconds over the retained sliding windows (≈4×256 recent
// slots), or 0 before the first Step.
func (g *Gateway) TickQuantileMs(q float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.tickHist == nil || g.tickHist.Count() == 0 {
		return 0
	}
	return g.tickHist.Quantile(q)
}

// newTickHist builds the sliding tick-duration histogram: 4 windows of
// 64 bins, 0.25 ms base width (auto-widening).
func newTickHist() *metrics.WindowedHist {
	h, err := metrics.NewWindowedHist(4, 64, 0.25)
	if err != nil {
		panic(err) // constants; cannot fail
	}
	return h
}
