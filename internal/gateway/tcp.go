package gateway

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"jointstream/internal/units"
)

// This file implements the gateway's wire protocol for real (TCP) clients,
// used by cmd/jstream-gateway and the live examples. The protocol is
// newline-delimited and deliberately minimal:
//
//	client -> gateway:  HELLO <videoKB> <rateKBps>
//	client -> gateway:  SIG <dBm>            (any time; updates the report)
//	gateway -> client:  DATA <n>\n<n raw bytes>
//	gateway -> client:  BUSY <reason>        (admission refused; then close)
//
// The gateway side adapts one connection to the Endpoint interface; the
// client side (Client) performs the handshake, streams RSSI updates and
// consumes DATA frames.

// TCPEndpoint adapts a net.Conn to the Endpoint interface. Reports are
// updated by a background reader consuming SIG lines.
type TCPEndpoint struct {
	mu   sync.Mutex
	conn net.Conn
	sig  units.DBm
	rate units.KBps
	gone bool
	// ioTimeout, when positive, bounds every conn write (and the
	// background reader's waits) so a wedged peer can never hang a
	// Deliver forever: the write deadline surfaces as a transient
	// timeout the gateway's retry policy absorbs.
	ioTimeout time.Duration
}

// Report implements Endpoint.
func (e *TCPEndpoint) Report() (Report, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gone {
		return Report{}, false
	}
	return Report{Sig: e.sig, Rate: e.rate}, true
}

// Deliver implements Endpoint: one DATA frame per slot grant. Write
// timeouts are returned as-is (the classifier calls them transient and
// the gateway retries); any other write failure marks the client gone.
func (e *TCPEndpoint) Deliver(p []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.gone {
		return Fatal(fmt.Errorf("gateway: client gone"))
	}
	if e.ioTimeout > 0 {
		e.conn.SetWriteDeadline(time.Now().Add(e.ioTimeout))
	}
	if _, err := fmt.Fprintf(e.conn, "DATA %d\n", len(p)); err != nil {
		return e.writeErr(err)
	}
	if _, err := e.conn.Write(p); err != nil {
		return e.writeErr(err)
	}
	return nil
}

// writeErr marks the endpoint gone on fatal write failures; timeouts
// leave it attached for the retry path. Callers hold e.mu.
func (e *TCPEndpoint) writeErr(err error) error {
	if Classify(err) == FatalError {
		e.gone = true
	}
	return err
}

// markGone flags the endpoint as disconnected.
func (e *TCPEndpoint) markGone() {
	e.mu.Lock()
	e.gone = true
	e.mu.Unlock()
}

// setSig updates the reported signal.
func (e *TCPEndpoint) setSig(v units.DBm) {
	e.mu.Lock()
	e.sig = v
	e.mu.Unlock()
}

// Hello is the parsed client handshake.
type Hello struct {
	VideoKB units.KB
	Rate    units.KBps
}

// finite reports whether v is a usable (non-NaN, non-Inf) float.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// parseHello validates a HELLO line. Non-finite parameters (NaN, Inf)
// are rejected: NaN in particular compares false against every bound and
// would otherwise slip through and poison the radio model.
func parseHello(line string) (Hello, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 3 || fields[0] != "HELLO" {
		return Hello{}, fmt.Errorf("gateway: bad handshake %q", strings.TrimSpace(line))
	}
	size, err := strconv.ParseFloat(fields[1], 64)
	if err != nil || !finite(size) || size <= 0 {
		return Hello{}, fmt.Errorf("gateway: bad video size %q", fields[1])
	}
	rate, err := strconv.ParseFloat(fields[2], 64)
	if err != nil || !finite(rate) || rate <= 0 {
		return Hello{}, fmt.Errorf("gateway: bad rate %q", fields[2])
	}
	return Hello{VideoKB: units.KB(size), Rate: units.KBps(rate)}, nil
}

// parseSig parses a SIG line, rejecting malformed and non-finite values.
// ok=false means the line was not an acceptable SIG update (the reader
// ignores it; the protocol tolerates unknown lines).
func parseSig(line string) (units.DBm, bool) {
	f := strings.Fields(strings.TrimSpace(line))
	if len(f) != 2 || f[0] != "SIG" {
		return 0, false
	}
	dbm, err := strconv.ParseFloat(f[1], 64)
	if err != nil || !finite(dbm) {
		return 0, false
	}
	return units.DBm(dbm), true
}

// ConnOptions tunes AttachConnWith.
type ConnOptions struct {
	// InitialSig seeds the report until the first SIG line arrives.
	InitialSig units.DBm
	// IOTimeout, when positive, is applied as a per-operation deadline to
	// the handshake read, every SIG read and every DATA write, so neither
	// the background reader nor the transmitter can hang forever on a
	// wedged peer. A reader deadline expiry (no SIG for IOTimeout) marks
	// the client gone, handing it to the gateway's stale-report policy.
	IOTimeout time.Duration
}

// AttachConn performs the HELLO handshake on conn, attaches the resulting
// user to gw with a PatternSource of the requested size, and starts a
// background reader that applies SIG updates until the client hangs up.
// The initial report uses initialSig until the first SIG line arrives.
func AttachConn(gw *Gateway, conn net.Conn, initialSig units.DBm) (int, error) {
	return AttachConnWith(gw, conn, ConnOptions{InitialSig: initialSig})
}

// AttachConnWith is AttachConn with explicit options.
func AttachConnWith(gw *Gateway, conn net.Conn, opts ConnOptions) (int, error) {
	br := bufio.NewReader(conn)
	if opts.IOTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(opts.IOTimeout))
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("gateway: handshake read: %w", err)
	}
	hello, err := parseHello(line)
	if err != nil {
		return 0, err
	}
	ep := &TCPEndpoint{conn: conn, sig: opts.InitialSig, rate: hello.Rate, ioTimeout: opts.IOTimeout}
	src, err := NewPatternSource(hello.VideoKB)
	if err != nil {
		return 0, err
	}
	id, err := gw.Attach(ep, src)
	if err != nil {
		// Admission refusals get a protocol-level answer so load
		// generators can tell "come back later" from a broken gateway.
		switch {
		case errors.Is(err, ErrDraining):
			fmt.Fprintf(conn, "BUSY draining\n")
		case errors.Is(err, ErrOverCapacity):
			fmt.Fprintf(conn, "BUSY over-capacity\n")
		}
		return 0, err
	}
	go func() {
		defer conn.Close()
		for {
			if opts.IOTimeout > 0 {
				conn.SetReadDeadline(time.Now().Add(opts.IOTimeout))
			}
			line, err := br.ReadString('\n')
			if err != nil {
				ep.markGone()
				return
			}
			if dbm, ok := parseSig(line); ok {
				ep.setSig(dbm)
			}
		}
	}()
	return id, nil
}

// Client is the device side of the protocol.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	want int64
	got  int64
}

// DialClient connects to a gateway and performs the handshake for a video
// of the given size and required rate.
func DialClient(addr string, videoKB units.KB, rate units.KBps) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, videoKB, rate)
}

// NewClient runs the handshake over an existing connection (useful with
// net.Pipe in tests).
func NewClient(conn net.Conn, videoKB units.KB, rate units.KBps) (*Client, error) {
	if videoKB <= 0 || rate <= 0 {
		conn.Close()
		return nil, fmt.Errorf("gateway: invalid client parameters (video %v, rate %v)", videoKB, rate)
	}
	if _, err := fmt.Fprintf(conn, "HELLO %g %g\n", float64(videoKB), float64(rate)); err != nil {
		conn.Close()
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		want: int64(float64(videoKB) * 1000),
	}, nil
}

// ReportSignal sends a SIG update.
func (c *Client) ReportSignal(sig units.DBm) error {
	_, err := fmt.Fprintf(c.conn, "SIG %.1f\n", float64(sig))
	return err
}

// ErrBusy is returned by ReadFrame when the gateway answered the
// handshake with a BUSY line: the session was refused at admission
// (over capacity or draining), not dropped by a fault.
var ErrBusy = errors.New("gateway: busy, session refused at admission")

// ReadFrame consumes the next DATA frame, returning its payload length.
// io.EOF is returned once the full video has been received; ErrBusy if
// the gateway refused the session at admission.
func (c *Client) ReadFrame() (int, error) {
	if c.got >= c.want {
		return 0, io.EOF
	}
	for {
		line, err := c.br.ReadString('\n')
		if err != nil {
			return 0, err
		}
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) >= 1 && f[0] == "BUSY" {
			return 0, ErrBusy
		}
		if len(f) != 2 || f[0] != "DATA" {
			continue // tolerate unknown lines
		}
		n, err := strconv.Atoi(f[1])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("gateway: bad DATA header %q", strings.TrimSpace(line))
		}
		if _, err := io.CopyN(io.Discard, c.br, int64(n)); err != nil {
			return 0, err
		}
		c.got += int64(n)
		return n, nil
	}
}

// ReceivedBytes reports the client's progress.
func (c *Client) ReceivedBytes() int64 { return c.got }

// Done reports whether the whole video arrived.
func (c *Client) Done() bool { return c.got >= c.want }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
