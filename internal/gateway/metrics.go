package gateway

import "jointstream/internal/metrics"

// This file is the gateway's per-session quality observability: when a
// session ends — natural completion or any detach — its lifetime
// rebuffer time and accounted energy fold into a pair of sliding
// windowed histograms, rotated on the tick-histogram cadence
// (tickHistWindowSlots). GET /metrics serves the p50/p99 of both over
// the retained windows, so an operator sees the quality of *recently
// ended* sessions, not an all-time average that staleness can't move.

// newSessionHists builds the sliding per-session quality histograms:
// rebuffer in seconds (0.25 s base bins) and energy in millijoules
// (50 mJ base bins), both 4 windows of 64 auto-widening bins.
func newSessionHists() (rebuf, energy *metrics.WindowedHist) {
	r, err := metrics.NewWindowedHist(4, 64, 0.25)
	if err != nil {
		panic(err) // constants; cannot fail
	}
	e, err := metrics.NewWindowedHist(4, 64, 50)
	if err != nil {
		panic(err) // constants; cannot fail
	}
	return r, e
}

// foldSession lands one ended session's lifetime totals in the windowed
// histograms, exactly once. Callers hold g.mu.
func (g *Gateway) foldSession(u *user) {
	if u.folded {
		return
	}
	u.folded = true
	g.endedTotal++
	g.rebufHist.Observe(float64(u.rebufferSec))
	g.energyHist.Observe(float64(u.transEnergy) + float64(u.tailEnergy))
}

// foldFinished folds sessions that reached natural completion this slot
// (detached sessions fold inside detach). Callers hold g.mu.
func (g *Gateway) foldFinished() {
	for _, u := range g.users {
		if !u.folded && !u.detached && u.srcDone && len(u.queue) == 0 && !u.inFlight {
			g.foldSession(u)
		}
	}
}

// SessionMetrics is a snapshot of the sliding per-session quality
// window: quantiles of lifetime rebuffer and energy over sessions that
// ended in the retained windows (≈4×256 recent slots).
type SessionMetrics struct {
	// EndedWindow counts sessions in the retained windows; EndedTotal
	// counts every session ended since the gateway started.
	EndedWindow, EndedTotal  int
	RebufP50Sec, RebufP99Sec float64
	EnergyP50MJ, EnergyP99MJ float64
}

// SessionWindowMetrics returns the sliding-window per-session quality
// snapshot. Quantiles are 0 while no session has ended in the window.
func (g *Gateway) SessionWindowMetrics() SessionMetrics {
	g.mu.Lock()
	defer g.mu.Unlock()
	m := SessionMetrics{EndedTotal: g.endedTotal}
	if g.rebufHist != nil && g.rebufHist.Count() > 0 {
		m.EndedWindow = int(g.rebufHist.Count())
		m.RebufP50Sec = g.rebufHist.Quantile(0.50)
		m.RebufP99Sec = g.rebufHist.Quantile(0.99)
	}
	if g.energyHist != nil && g.energyHist.Count() > 0 {
		m.EnergyP50MJ = g.energyHist.Quantile(0.50)
		m.EnergyP99MJ = g.energyHist.Quantile(0.99)
	}
	return m
}
