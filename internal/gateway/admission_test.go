package gateway

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"jointstream/internal/sched"
	"jointstream/internal/signal"
)

// TestAdmissionSessionCap: the concurrent-session cap rejects the
// (cap+1)-th attachment with a typed error, and frees a slot when a
// session leaves service.
func TestAdmissionSessionCap(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSessions = 2
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	attachUser(t, g, 500, 400, -60)
	ep2, _ := attachUser(t, g, 500, 400, -60)
	ep3, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewPatternSource(500)
	if _, err := g.Attach(ep3, src); !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("over-cap attach: got %v, want ErrOverCapacity", err)
	}
	var oce *OverCapacityError
	_, err = g.Attach(ep3, src)
	if !errors.As(err, &oce) || oce.Reason != "session-cap" || oce.InService != 2 || oce.MaxSessions != 2 {
		t.Fatalf("typed rejection: got %v (%+v)", err, oce)
	}
	d := g.Diagnostics()
	if d.Admitted != 2 || d.Rejected != 2 {
		t.Fatalf("diag admitted=%d rejected=%d, want 2/2", d.Admitted, d.Rejected)
	}
	// Finish one session; its slot frees up.
	for i := 0; i < 50 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		ep2.Advance()
	}
	if !g.AllDone() {
		t.Fatal("sessions did not finish")
	}
	if _, err := g.Attach(ep3, src); err != nil {
		t.Fatalf("attach after slots freed: %v", err)
	}
}

// TestAdmissionHeadroom: the Eq.-1-style headroom check sums the
// reported required rates of everyone in service and rejects a newcomer
// that would push demand past AdmitHeadroomFrac × Capacity.
func TestAdmissionHeadroom(t *testing.T) {
	cfg := testConfig() // Capacity 5000
	cfg.AdmitHeadroomFrac = 0.1
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	attachUser(t, g, 5000, 400, -60)
	// One step so the first user's report is on record.
	if _, err := g.Step(); err != nil {
		t.Fatal(err)
	}
	ep, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewPatternSource(500)
	var oce *OverCapacityError
	_, err = g.Attach(ep, src)
	if !errors.As(err, &oce) || oce.Reason != "headroom" {
		t.Fatalf("headroom rejection: got %v", err)
	}
	if oce.DemandKBps != 800 || oce.LimitKBps != 500 {
		t.Fatalf("headroom fields: demand=%v limit=%v, want 800/500", oce.DemandKBps, oce.LimitKBps)
	}
	// A session that fits inside the remaining headroom is admitted.
	epSmall, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Attach(epSmall, src); err != nil {
		t.Fatalf("within-headroom attach: %v", err)
	}
}

// TestDrain: BeginDrain stops admission, keeps serving what's in
// flight, and Drained flips only once the last session finished.
func TestDrain(t *testing.T) {
	g, err := New(testConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	ep1, _ := attachUser(t, g, 500, 400, -60)
	ep2, _ := attachUser(t, g, 800, 400, -60)
	if g.Draining() || g.Drained() {
		t.Fatal("fresh gateway claims to be draining")
	}
	g.BeginDrain()
	g.BeginDrain() // idempotent
	if !g.Draining() {
		t.Fatal("BeginDrain did not take")
	}
	if g.Drained() {
		t.Fatal("Drained with sessions still in service")
	}
	ep3, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewPatternSource(500)
	if _, err := g.Attach(ep3, src); !errors.Is(err, ErrDraining) {
		t.Fatalf("attach while draining: got %v, want ErrDraining", err)
	}
	for i := 0; i < 80 && !g.Drained(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		ep1.Advance()
		ep2.Advance()
	}
	if !g.Drained() {
		t.Fatal("drain never completed")
	}
	d := g.Diagnostics()
	if d.Drained != 2 {
		t.Fatalf("diag drained=%d, want 2", d.Drained)
	}
	if d.Rejected != 1 {
		t.Fatalf("diag rejected=%d, want 1", d.Rejected)
	}
}

// TestShedOrdering pins the victim-selection policy without timing:
// lowest playback buffer first, newest session on buffer ties, at most
// ShedMaxPerSlot victims, and the miss window resets after a shed.
func TestShedOrdering(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = Policy{ShedMaxPerSlot: 2, ShedMissWindowSlots: 4, ShedMissThreshold: 2}
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		attachUser(t, g, 5000, 400, -60)
	}
	g.mu.Lock()
	g.users[0].bufferSec = 9
	g.users[1].bufferSec = 2
	g.users[2].bufferSec = 5
	g.users[3].bufferSec = 2 // ties user 1; newer, so shed first
	g.noteTick(time.Millisecond, true)
	g.noteTick(time.Millisecond, true)
	g.maybeShed()
	missCount := g.missCount
	g.mu.Unlock()
	d := g.Diagnostics()
	if d.Shed != 2 {
		t.Fatalf("shed %d sessions, want 2", d.Shed)
	}
	for id, want := range map[int]DetachReason{0: DetachNone, 1: DetachShed, 2: DetachNone, 3: DetachShed} {
		st, err := g.StatsFor(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.DetachReason != want {
			t.Errorf("user %d: reason %q, want %q", id, st.DetachReason, want)
		}
	}
	if missCount != 0 {
		t.Fatalf("miss window not reset after shed: %d", missCount)
	}
	// Below the threshold nothing sheds.
	g.mu.Lock()
	g.noteTick(time.Millisecond, true)
	g.maybeShed()
	g.mu.Unlock()
	if d := g.Diagnostics(); d.Shed != 2 {
		t.Fatalf("shed below threshold: %d, want still 2", d.Shed)
	}
}

// slowEndpoint absorbs every payload successfully but takes longer than
// any reasonable slot deadline to do it — the sustained-overload shape
// (as opposed to stalledEndpoint's never-returns shape).
type slowEndpoint struct{ delay time.Duration }

func (e *slowEndpoint) Report() (Report, bool) { return Report{Sig: -60, Rate: 400}, true }
func (e *slowEndpoint) Deliver([]byte) error   { time.Sleep(e.delay); return nil }

// TestShedUnderDeadlinePressure is the end-to-end overload story: an
// endpoint whose deliveries persistently outlive the slot deadline
// accumulates misses in the shedder's window until it is shed with
// DetachShed, and the tick histogram has observed the pressure.
func TestShedUnderDeadlinePressure(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = Policy{
		AsyncDelivery:  true,
		SlotDeadline:   time.Millisecond,
		BreakerTrips:   -1, // isolate the shedder from the breaker
		ShedMaxPerSlot: 1, ShedMissWindowSlots: 8, ShedMissThreshold: 3,
	}
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	slow := &slowEndpoint{delay: 5 * time.Millisecond}
	src, _ := NewPatternSource(100000)
	id, err := g.Attach(slow, src)
	if err != nil {
		t.Fatal(err)
	}
	shedAt := -1
	for slot := 0; slot < 60; slot++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		if g.Diagnostics().Shed > 0 {
			shedAt = slot
			break
		}
		// Pace the tick so each slow delivery lands before the next slot
		// grants again — every granted slot then misses its deadline.
		time.Sleep(20 * time.Millisecond)
	}
	if shedAt < 0 {
		t.Fatal("persistent deadline pressure never shed the session")
	}
	st, err := g.StatsFor(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Detached || st.DetachReason != DetachShed {
		t.Fatalf("shed victim state: detached=%v reason=%q", st.Detached, st.DetachReason)
	}
	if p99 := g.TickQuantileMs(0.99); p99 <= 0 {
		t.Fatalf("tick histogram empty after %d slots", shedAt+1)
	}
}

// waitGoroutines polls until the goroutine count returns to the
// baseline taken before the scenario, failing after the deadline. The
// delivery workers are the gateway's only goroutines, so convergence to
// the baseline is exactly "no leaked worker".
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestNoGoroutineLeakOnCompletion: sessions that run to their natural
// end leave no delivery workers behind once the gateway is closed.
func TestNoGoroutineLeakOnCompletion(t *testing.T) {
	base := runtime.NumGoroutine()
	g, err := New(asyncConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*LocalEndpoint, 3)
	for i := range eps {
		eps[i], _ = attachUser(t, g, 800, 400, -60)
	}
	for i := 0; i < 60 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			ep.Advance()
		}
	}
	if !g.AllDone() {
		t.Fatal("sessions did not finish")
	}
	g.Close()
	waitGoroutines(t, base)
}

// TestNoGoroutineLeakOnFatalDetach: a fatally-detached user's worker is
// reaped at detach time — before any Close.
func TestNoGoroutineLeakOnFatalDetach(t *testing.T) {
	base := runtime.NumGoroutine()
	g, err := New(asyncConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ep, id := attachUser(t, g, 100000, 400, -60)
	if _, err := g.Step(); err != nil {
		t.Fatal(err)
	}
	ep.Disconnect()
	for i := 0; i < 20; i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		if st, _ := g.StatsFor(id); st.Detached {
			break
		}
	}
	if st, _ := g.StatsFor(id); !st.Detached || st.DetachReason != DetachFatal {
		t.Fatalf("disconnect did not fatally detach: %+v", st)
	}
	waitGoroutines(t, base) // worker gone without Close
}

// TestNoGoroutineLeakOnBreakerDetach: a breaker-opened user's worker is
// reaped when the breaker trips.
func TestNoGoroutineLeakOnBreakerDetach(t *testing.T) {
	base := runtime.NumGoroutine()
	g, err := New(asyncConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	src, _ := NewPatternSource(100000)
	id, err := g.Attach(&failingEndpoint{}, src)
	if err != nil {
		t.Fatal(err)
	}
	detached := false
	for i := 0; i < 200 && !detached; i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		st, _ := g.StatsFor(id)
		detached = st.Detached
	}
	if st, _ := g.StatsFor(id); !detached || st.DetachReason != DetachBreaker {
		t.Fatalf("breaker did not open: %+v", st)
	}
	waitGoroutines(t, base)
}

// TestNoGoroutineLeakOnShed: a session shed while its delivery is in
// flight keeps its worker only until the outcome lands, then the worker
// exits.
func TestNoGoroutineLeakOnShed(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := testConfig()
	cfg.Policy = Policy{
		AsyncDelivery:  true,
		SlotDeadline:   time.Millisecond,
		BreakerTrips:   -1,
		ShedMaxPerSlot: 1, ShedMissWindowSlots: 8, ShedMissThreshold: 2,
	}
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	slow := &slowEndpoint{delay: 5 * time.Millisecond}
	src, _ := NewPatternSource(100000)
	if _, err := g.Attach(slow, src); err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 60 && g.Diagnostics().Shed == 0; slot++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if g.Diagnostics().Shed == 0 {
		t.Fatal("session never shed")
	}
	// A few more ticks so an in-flight outcome can land and release the
	// worker; the leak check then converges without Close.
	for i := 0; i < 5; i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	waitGoroutines(t, base)
}

// TestNoGoroutineLeakOnDrain: draining to completion and closing the
// gateway releases every worker.
func TestNoGoroutineLeakOnDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	g, err := New(asyncConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*LocalEndpoint, 3)
	for i := range eps {
		eps[i], _ = attachUser(t, g, 800, 400, -60)
	}
	g.BeginDrain()
	for i := 0; i < 80 && !g.Drained(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		for _, ep := range eps {
			ep.Advance()
		}
	}
	if !g.Drained() {
		t.Fatal("drain never completed")
	}
	g.Close()
	waitGoroutines(t, base)
}
