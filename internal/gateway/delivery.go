package gateway

import (
	"time"

	"jointstream/internal/units"
)

// This file implements the per-endpoint asynchronous delivery path. With
// Policy.AsyncDelivery set, each user's Deliver calls run on a dedicated
// worker goroutine: Step snapshots the granted bytes, hands them to the
// worker, and waits at most Policy.SlotDeadline for the slot's deliveries
// to complete. A stalled reader therefore costs only its own slot grant —
// never the tick. Deliveries that outlive the deadline stay in flight;
// their outcome (success, transient error, fatal error) is committed at
// the next Step that observes the completion. While a delivery is in
// flight the user is not granted further data, and each such slot counts
// toward the circuit breaker, so an endpoint stalled forever is detached
// after Policy.BreakerTrips slots — deterministically, not by a data
// race with the transport.
//
// Plumbing: every worker owns a capacity-1 result channel (one job can be
// outstanding per endpoint, so the send never blocks) and rings a shared
// capacity-1 wake bell after publishing. The collector scans all users on
// every ring, so a dropped ring (bell already full) can never lose a
// completion.

// deliveryJob is one slot grant handed to an endpoint worker.
type deliveryJob struct {
	payload []byte
	slot    int
	// rate snapshots the report used for the grant, so late completions
	// commit playback progress with the numbers of the slot that granted
	// them.
	rate units.KBps
}

// deliveryResult is a worker's completion notice.
type deliveryResult struct {
	job deliveryJob
	err error
}

// deliveryWorker serializes one endpoint's Deliver calls.
type deliveryWorker struct {
	jobs chan deliveryJob
	done chan deliveryResult // cap 1: at most one job outstanding
}

// ensureWorker lazily starts user u's delivery worker.
func (g *Gateway) ensureWorker(u *user) *deliveryWorker {
	if u.worker != nil {
		return u.worker
	}
	w := &deliveryWorker{jobs: make(chan deliveryJob, 1), done: make(chan deliveryResult, 1)}
	u.worker = w
	ep, wake := u.ep, g.wake
	go func() {
		for job := range w.jobs {
			err := ep.Deliver(job.payload)
			w.done <- deliveryResult{job: job, err: err}
			// Ring the bell after publishing; a full bell means the
			// collector will scan anyway.
			select {
			case wake <- struct{}{}:
			default:
			}
		}
	}()
	return w
}

// submitAsync hands a grant to the user's worker. It never blocks: the
// caller checks inFlight before granting, so the 1-slot job buffer is
// always free here.
func (g *Gateway) submitAsync(u *user, job deliveryJob) {
	w := g.ensureWorker(u)
	u.inFlight = true
	w.jobs <- job
}

// collectCompletions applies every completion already published, and
// returns how many of them belonged to the given slot. Callers hold g.mu.
func (g *Gateway) collectCompletions(slot int) int {
	n := 0
	for _, u := range g.users {
		w := u.worker
		if w == nil {
			continue
		}
		select {
		case r := <-w.done:
			if r.job.slot == slot {
				n++
			}
			g.completeDelivery(u, r)
		default:
		}
	}
	return n
}

// awaitSlotDeliveries blocks until every delivery submitted for slot
// `slot` has completed or the deadline elapses, applying every completion
// it observes (including late ones from earlier slots). It returns the
// number of this-slot deliveries still in flight at the deadline.
// Callers hold g.mu.
func (g *Gateway) awaitSlotDeliveries(slot, submitted int, deadline time.Duration) int {
	submitted -= g.collectCompletions(slot)
	if submitted <= 0 {
		return 0
	}
	if deadline <= 0 {
		return submitted
	}
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for submitted > 0 {
		select {
		case <-g.wake:
			submitted -= g.collectCompletions(slot)
		case <-timer.C:
			return submitted
		}
	}
	return 0
}

// completeDelivery commits one finished async delivery: on success the
// playback bookkeeping the synchronous path does at transmit time; on
// failure the bytes return to the head of the queue and the error is
// routed through the classification/backoff/breaker policy. Callers hold
// g.mu.
func (g *Gateway) completeDelivery(u *user, r deliveryResult) {
	u.inFlight = false
	if r.err != nil {
		// The grant was not absorbed: un-consume the bytes so the session
		// loses no data, then apply the failure policy.
		u.queue = append(r.job.payload, u.queue...)
		g.deliveryFailed(u, r.err)
	} else {
		deliveredKB := units.KB(float64(len(r.job.payload)) / 1000)
		u.sentKB += deliveredKB
		if r.job.rate > 0 {
			u.bufferSec += units.Seconds(float64(deliveredKB) / float64(r.job.rate))
		}
		g.deliverySucceeded(u)
	}
	// A user detached while its last delivery was in flight keeps its
	// worker until that outcome lands — release it now.
	if u.detached && u.worker != nil {
		close(u.worker.jobs)
		u.worker = nil
	}
}

// closeWorkers shuts down every delivery worker. Closing the jobs
// channel is safe even with a delivery outstanding: the worker finishes
// it, publishes to its cap-1 done channel without blocking, and exits.
// Workers blocked inside a stalled Deliver exit when the endpoint
// releases them. Callers hold g.mu.
func (g *Gateway) closeWorkers() {
	for _, u := range g.users {
		if u.worker != nil {
			close(u.worker.jobs)
			u.worker = nil
		}
	}
}

// Close releases the gateway's delivery workers. Only needed with
// Policy.AsyncDelivery; safe to call after the last Step.
func (g *Gateway) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closeWorkers()
}

// deliveryFailed routes a classified delivery error through the policy.
// Callers hold g.mu.
func (g *Gateway) deliveryFailed(u *user, err error) {
	switch Classify(err) {
	case FatalError:
		g.diag.FatalErrors++
		g.detach(u, DetachFatal)
	default:
		g.diag.TransientErrors++
		u.transientErrors++
		g.recordStrike(u)
	}
}

// recordStrike counts one transient failure (delivery error or stalled
// slot) against the user: the breaker opens at Policy.BreakerTrips
// consecutive strikes, otherwise the user backs off exponentially.
// Callers hold g.mu.
func (g *Gateway) recordStrike(u *user) {
	u.failStreak++
	if g.policy.BreakerTrips > 0 && u.failStreak >= g.policy.BreakerTrips {
		g.diag.BreakerOpens++
		g.detach(u, DetachBreaker)
		return
	}
	backoff := g.policy.BackoffMaxSlots
	if s := u.failStreak - 1; s < 30 {
		if b := g.policy.BackoffBaseSlots << s; b < backoff {
			backoff = b
		}
	}
	u.backoffUntil = g.slot + 1 + backoff
}

// deliverySucceeded resets a user's failure streak (a backoff retry that
// lands reattaches the user at full service). Callers hold g.mu.
func (g *Gateway) deliverySucceeded(u *user) {
	if u.failStreak > 0 {
		u.failStreak = 0
		u.backoffUntil = 0
		g.diag.Reattaches++
	}
}

// detach finalizes a user's removal. Callers hold g.mu.
func (g *Gateway) detach(u *user, reason DetachReason) {
	if u.detached {
		return
	}
	g.foldSession(u)
	u.detached = true
	u.detachReason = reason
	if u.worker != nil && !u.inFlight {
		close(u.worker.jobs)
		u.worker = nil
	}
}
