package gateway

import (
	"math"
	"testing"

	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

func energyConfig() Config {
	cfg := testConfig()
	cfg.RRC = rrc.Paper3G()
	return cfg
}

func TestEnergyAccountingDisabledByDefault(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	ep, id := attachUser(t, g, 1000, 400, -60)
	for i := 0; i < 20 && !g.AllDone(); i++ {
		g.Step()
		ep.Advance()
	}
	st, _ := g.StatsFor(id)
	if st.TransEnergy != 0 || st.TailEnergy != 0 {
		t.Errorf("energy tracked without RRC profile: %+v", st)
	}
}

func TestTransmissionEnergyMatchesEq3(t *testing.T) {
	g, err := New(energyConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	ep, id := attachUser(t, g, 2000, 400, -60)
	for i := 0; i < 30 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		ep.Advance()
	}
	st, _ := g.StatsFor(id)
	// Constant -60 dBm channel: energy = size x P(-60).
	perKB := float64(radio.Paper3G().Power.EnergyPerKB(-60))
	want := 2000 * perKB
	if math.Abs(float64(st.TransEnergy)-want) > 1e-6 {
		t.Errorf("TransEnergy = %v, want %v", st.TransEnergy, want)
	}
	if st.Energy() != st.TransEnergy+st.TailEnergy {
		t.Error("Energy() mismatch")
	}
}

func TestTailEnergyAccruesWhileIdle(t *testing.T) {
	// Capacity fits one user per slot; the proportional-fair scheduler
	// rotates grants, so each user idles between transfers and pays tail
	// energy during the gaps. (A user that never transfers at all has no
	// pending tail — the never-active rule — which is why this test needs
	// rotation rather than outright starvation.)
	cfg := energyConfig()
	cfg.Capacity = 100 // 1 unit per slot
	pf, err := sched.NewProportionalFair(5)
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(cfg, pf)
	if err != nil {
		t.Fatal(err)
	}
	epA, _ := attachUser(t, g, 100000, 400, -60)
	epB, idB := attachUser(t, g, 100000, 400, -60)
	for i := 0; i < 12; i++ {
		g.Step()
		epA.Advance()
		epB.Advance()
	}
	st, _ := g.StatsFor(idB)
	if st.SentKB == 0 {
		t.Fatalf("PF starved user 1 entirely: %+v", st)
	}
	if st.TailEnergy <= 0 {
		t.Errorf("rotating user accrued no tail energy: %+v", st)
	}
}

func TestFastDormancyReducesGatewayTail(t *testing.T) {
	// Same rotating setup; a sub-slot fast-dormancy release must shrink
	// the tail paid during the one-slot gaps between grants.
	run := func(profile rrc.Profile) units.MJ {
		cfg := energyConfig()
		cfg.RRC = profile
		cfg.Capacity = 100
		pf, err := sched.NewProportionalFair(5)
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(cfg, pf)
		if err != nil {
			t.Fatal(err)
		}
		epA, _ := attachUser(t, g, 100000, 400, -60)
		epB, idB := attachUser(t, g, 100000, 400, -60)
		for i := 0; i < 12; i++ {
			g.Step()
			epA.Advance()
			epB.Advance()
		}
		st, _ := g.StatsFor(idB)
		return st.TailEnergy
	}
	normal := run(rrc.Paper3G())
	fd := run(rrc.Paper3G().WithFastDormancy(0.5))
	if fd >= normal {
		t.Errorf("fast dormancy tail %v not below normal %v", fd, normal)
	}
}

func TestInvalidRRCProfileRejected(t *testing.T) {
	cfg := testConfig()
	cfg.RRC = rrc.Profile{Pd: -1}
	if _, err := New(cfg, sched.NewDefault()); err == nil {
		t.Error("invalid RRC profile accepted")
	}
}

func TestEMASchedulerSeesTailState(t *testing.T) {
	// EMA inside the gateway must still deliver: its tail-aware cost uses
	// the user TailGap view, which the gateway currently reports as fresh
	// (NeverActive false only after transfers are modelled by sched.User
	// defaults). This is an integration smoke test.
	em, err := sched.NewEMA(sched.EMAConfig{V: 0.1, RRC: rrc.Paper3G()})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(energyConfig(), em)
	if err != nil {
		t.Fatal(err)
	}
	tr := signal.Constant(-65, signal.DefaultBounds)
	ep, err := NewLocalEndpoint(tr, 400, false)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := NewPatternSource(1500)
	id, err := g.Attach(ep, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60 && !g.AllDone(); i++ {
		g.Step()
		ep.Advance()
	}
	st, _ := g.StatsFor(id)
	if st.SentKB != 1500 {
		t.Errorf("EMA gateway delivered %v, want 1500", st.SentKB)
	}
	if st.TransEnergy <= 0 {
		t.Error("no transmission energy accounted")
	}
}
