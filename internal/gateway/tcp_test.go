package gateway

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"jointstream/internal/sched"
	"jointstream/internal/units"
)

func TestParseHello(t *testing.T) {
	good, err := parseHello("HELLO 2000 400\n")
	if err != nil {
		t.Fatal(err)
	}
	if good.VideoKB != 2000 || good.Rate != 400 {
		t.Errorf("parsed %+v", good)
	}
	bad := []string{
		"",
		"HELLO\n",
		"HELLO 2000\n",
		"HOWDY 2000 400\n",
		"HELLO abc 400\n",
		"HELLO 2000 abc\n",
		"HELLO -5 400\n",
		"HELLO 2000 0\n",
		"HELLO 1 2 3\n",
	}
	for _, line := range bad {
		if _, err := parseHello(line); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestNewClientValidation(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	if _, err := NewClient(a, 0, 400); err == nil {
		t.Error("zero video accepted")
	}
	a2, b2 := net.Pipe()
	defer b2.Close()
	if _, err := NewClient(a2, 100, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

// startGateway runs a gateway over a real TCP listener, stepping every
// few milliseconds, and returns its address and a stop function.
func startGateway(t *testing.T, s sched.Scheduler) (string, func()) {
	t.Helper()
	gw, err := New(Config{
		Tau:      0.05,
		Unit:     25,
		Capacity: 50000,
		Radio:    testConfig().Radio,
		QueueCap: 10000,
	}, s)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := AttachConn(gw, conn, -80); err != nil {
				conn.Close()
			}
		}
	}()
	go func() {
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				gw.Step()
			}
		}
	}()
	return ln.Addr().String(), func() {
		close(stop)
		ln.Close()
	}
}

func TestTCPEndToEnd(t *testing.T) {
	addr, stop := startGateway(t, sched.NewDefault())
	defer stop()

	c, err := DialClient(addr, 500, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ReportSignal(-60); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for !c.Done() {
		select {
		case <-deadline:
			t.Fatalf("timeout: received %d bytes", c.ReceivedBytes())
		default:
		}
		if _, err := c.ReadFrame(); err != nil {
			if err == io.EOF && c.Done() {
				break
			}
			t.Fatalf("ReadFrame: %v (got %d)", err, c.ReceivedBytes())
		}
	}
	if c.ReceivedBytes() != 500000 {
		t.Errorf("received %d bytes, want 500000", c.ReceivedBytes())
	}
	// Post-completion reads report EOF.
	if _, err := c.ReadFrame(); err != io.EOF {
		t.Errorf("post-completion ReadFrame err = %v, want EOF", err)
	}
}

func TestTCPMultipleClients(t *testing.T) {
	addr, stop := startGateway(t, sched.NewDefault())
	defer stop()

	const n = 3
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(id int) {
			c, err := DialClient(addr, 200, 400)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			deadline := time.After(30 * time.Second)
			for !c.Done() {
				select {
				case <-deadline:
					errs <- fmt.Errorf("client %d timeout at %d bytes", id, c.ReceivedBytes())
					return
				default:
				}
				if _, err := c.ReadFrame(); err != nil && err != io.EOF {
					errs <- fmt.Errorf("client %d: %w", id, err)
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestAttachConnRejectsBadHandshake(t *testing.T) {
	gw, err := New(Config{
		Tau: 1, Unit: 100, Capacity: 5000,
		Radio: testConfig().Radio, QueueCap: 1000,
	}, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := AttachConn(gw, server, -80)
		done <- err
	}()
	fmt.Fprintf(client, "GARBAGE\n")
	if err := <-done; err == nil {
		t.Error("bad handshake accepted")
	}
	client.Close()
	server.Close()
}

func TestParseSig(t *testing.T) {
	good := []struct {
		line string
		want units.DBm
	}{
		{"SIG -60\n", -60},
		{"SIG -75.5\n", -75.5},
		{"  SIG 0  \n", 0},
	}
	for _, c := range good {
		got, ok := parseSig(c.line)
		if !ok || got != c.want {
			t.Errorf("parseSig(%q) = %v, %v; want %v, true", c.line, got, ok, c.want)
		}
	}
	bad := []string{
		"",
		"SIG\n",
		"SIG -60 extra\n",
		"SIG abc\n",
		"SIG NaN\n",
		"SIG Inf\n",
		"SIG -Inf\n",
		"sig -60\n",
		"DATA 5\n",
	}
	for _, line := range bad {
		if _, ok := parseSig(line); ok {
			t.Errorf("parseSig accepted %q", line)
		}
	}
}

// TestAttachConnIgnoresMalformedSig: garbage and malformed SIG lines on
// the control stream must neither corrupt the report nor kill the
// reader; a subsequent well-formed SIG still lands.
func TestAttachConnIgnoresMalformedSig(t *testing.T) {
	gw, err := New(testConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	defer client.Close()
	done := make(chan int, 1)
	go func() {
		id, err := AttachConn(gw, server, -80)
		if err != nil {
			t.Error(err)
		}
		done <- id
	}()
	fmt.Fprintf(client, "HELLO 1000 400\n")
	<-done
	// Drain gateway->client DATA frames so pipe writes never block.
	go io.Copy(io.Discard, client)
	fmt.Fprintf(client, "SIG NaN\nGARBAGE LINE\nSIG\nSIG -42\n")
	gw.mu.Lock()
	ep := gw.users[0].ep.(*TCPEndpoint)
	gw.mu.Unlock()
	deadline := time.After(5 * time.Second)
	for {
		rep, ok := ep.Report()
		if ok && rep.Sig == -42 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("SIG update never applied; report = %+v, %v", rep, ok)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestAttachConnMidHandshakeDisconnect: a peer that hangs up before
// completing the HELLO line must produce an attach error, not a hang or
// a half-attached user.
func TestAttachConnMidHandshakeDisconnect(t *testing.T) {
	gw, err := New(testConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := AttachConn(gw, server, -80)
		done <- err
	}()
	// Partial handshake, then disconnect without the terminating newline.
	fmt.Fprintf(client, "HELLO 10")
	client.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("mid-handshake disconnect accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AttachConn hung on mid-handshake disconnect")
	}
	gw.mu.Lock()
	n := len(gw.users)
	gw.mu.Unlock()
	if n != 0 {
		t.Errorf("half-attached users = %d, want 0", n)
	}
}

// TestClientReadFrameTruncatedData: a DATA frame whose payload is cut
// short by a disconnect must surface an error, not a silent short read.
func TestClientReadFrameTruncatedData(t *testing.T) {
	server, client := net.Pipe()
	go func() {
		buf := make([]byte, 64)
		server.Read(buf) // drain handshake
		fmt.Fprintf(server, "DATA 1000\npartial")
		server.Close()
	}()
	c, err := NewClient(client, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadFrame(); err == nil {
		t.Error("truncated DATA frame accepted")
	}
}

// TestClientReadFrameNegativeCount: a negative DATA length is a protocol
// error, never a payload read.
func TestClientReadFrameNegativeCount(t *testing.T) {
	server, client := net.Pipe()
	go func() {
		buf := make([]byte, 64)
		server.Read(buf)
		fmt.Fprintf(server, "DATA -5\n")
	}()
	c, err := NewClient(client, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadFrame(); err == nil {
		t.Error("negative DATA count accepted")
	}
}

func TestTCPEndpointReportAndLifecycle(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	defer client.Close()
	ep := &TCPEndpoint{conn: server, sig: -80, rate: 400}

	rep, ok := ep.Report()
	if !ok || rep.Sig != -80 || rep.Rate != 400 {
		t.Fatalf("initial report = %+v, %v", rep, ok)
	}
	ep.setSig(-55)
	rep, _ = ep.Report()
	if rep.Sig != units.DBm(-55) {
		t.Errorf("sig after update = %v", rep.Sig)
	}
	ep.markGone()
	if _, ok := ep.Report(); ok {
		t.Error("gone endpoint still reporting")
	}
	if err := ep.Deliver([]byte{1}); err == nil {
		t.Error("delivery to gone endpoint succeeded")
	}
}

func TestTCPEndpointDeliverFrames(t *testing.T) {
	server, client := net.Pipe()
	defer client.Close()
	ep := &TCPEndpoint{conn: server, sig: -70, rate: 400}
	payload := []byte("hello-frame")
	go func() {
		if err := ep.Deliver(payload); err != nil {
			t.Error(err)
		}
		server.Close()
	}()
	buf := make([]byte, 256)
	var got []byte
	for {
		n, err := client.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			break
		}
	}
	want := fmt.Sprintf("DATA %d\n%s", len(payload), payload)
	if string(got) != want {
		t.Errorf("wire bytes = %q, want %q", got, want)
	}
}

func TestClientReadFrameBadHeader(t *testing.T) {
	server, client := net.Pipe()
	go func() {
		// Drain the handshake, then emit a corrupt DATA header.
		buf := make([]byte, 64)
		server.Read(buf)
		fmt.Fprintf(server, "DATA notanumber\n")
	}()
	c, err := NewClient(client, 100, 400)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.ReadFrame(); err == nil {
		t.Error("corrupt DATA header accepted")
	}
}
