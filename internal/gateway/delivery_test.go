package gateway

import (
	"errors"
	"sync"
	"testing"
	"time"

	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

// asyncConfig returns a gateway config with the async delivery path and a
// short slot deadline suitable for tests.
func asyncConfig() Config {
	c := testConfig()
	c.Policy = Policy{AsyncDelivery: true, SlotDeadline: 5 * time.Millisecond}
	return c
}

// stalledEndpoint reports normally but blocks every Deliver until
// Release is called — the worst case the slot-deadline machinery must
// isolate.
type stalledEndpoint struct {
	release   chan struct{}
	mu        sync.Mutex
	delivered int
}

func newStalledEndpoint() *stalledEndpoint {
	return &stalledEndpoint{release: make(chan struct{})}
}

func (e *stalledEndpoint) Report() (Report, bool) { return Report{Sig: -60, Rate: 400}, true }

func (e *stalledEndpoint) Deliver(p []byte) error {
	<-e.release
	e.mu.Lock()
	e.delivered++
	e.mu.Unlock()
	return Transient(errors.New("stall released"))
}

func (e *stalledEndpoint) Release() {
	select {
	case <-e.release:
	default:
		close(e.release)
	}
}

// TestStalledEndpointDoesNotBlockTick is the slot-time isolation proof:
// with one endpoint stalled indefinitely, every other user's per-slot
// delivery proceeds, Step latency stays bounded by the slot deadline,
// and the stalled user is detached by the breaker policy — never on the
// first error.
func TestStalledEndpointDoesNotBlockTick(t *testing.T) {
	cfg := asyncConfig()
	// Enough capacity that every user can be granted its full demand
	// each slot: per-slot progress is then a pure isolation property.
	cfg.Capacity = 20000
	g, err := New(cfg, sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	stalled := newStalledEndpoint()
	defer stalled.Release()
	defer g.Close()
	src, _ := NewPatternSource(100000)
	stalledID, err := g.Attach(stalled, src)
	if err != nil {
		t.Fatal(err)
	}
	healthy := make([]*LocalEndpoint, 3)
	ids := make([]int, 3)
	for i := range healthy {
		healthy[i], ids[i] = attachUser(t, g, 2000, 400, -60)
	}

	var prev [3]int64
	detachSlot := -1
	for slot := 0; slot < 20; slot++ {
		start := time.Now()
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el > time.Second {
			t.Fatalf("slot %d: Step took %v; tick latency not bounded", slot, el)
		}
		// Every healthy user must make per-slot progress until its video
		// completes.
		for i, ep := range healthy {
			got := ep.ReceivedBytes()
			if got < 2_000_000 && got <= prev[i] {
				t.Fatalf("slot %d: healthy user %d made no progress (%d bytes)", slot, ids[i], got)
			}
			prev[i] = got
		}
		st, _ := g.StatsFor(stalledID)
		if st.Detached && detachSlot < 0 {
			detachSlot = slot
		}
		if slot == 0 && st.Detached {
			t.Fatal("stalled user detached on the first error")
		}
	}
	st, _ := g.StatsFor(stalledID)
	if !st.Detached {
		t.Fatal("stalled user never detached")
	}
	if st.DetachReason != DetachBreaker {
		t.Errorf("stalled user detach reason = %q, want %q", st.DetachReason, DetachBreaker)
	}
	// Grant at slot 0, strikes on slots 1..BreakerTrips: detachment must
	// respect the policy window exactly.
	if detachSlot != DefaultBreakerTrips {
		t.Errorf("stalled user detached at slot %d, want %d (breaker policy)", detachSlot, DefaultBreakerTrips)
	}
	if st.MissedSlots < DefaultBreakerTrips {
		t.Errorf("missed slots = %d, want >= %d", st.MissedSlots, DefaultBreakerTrips)
	}
	for i, ep := range healthy {
		if got := ep.ReceivedBytes(); got != 2_000_000 {
			t.Errorf("healthy user %d received %d bytes, want 2000000", ids[i], got)
		}
		if err := Verify(ep.Payload()); err != nil {
			t.Errorf("healthy user %d: %v", ids[i], err)
		}
	}
}

// TestAsyncMatchesSyncForHealthyEndpoints: with prompt endpoints the
// async path must complete every delivery inside the slot and reproduce
// the synchronous path's outcome.
func TestAsyncMatchesSyncForHealthyEndpoints(t *testing.T) {
	run := func(cfg Config) ([]Stats, [][]byte) {
		g, err := New(cfg, sched.NewDefault())
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		eps := make([]*LocalEndpoint, 3)
		for i := range eps {
			eps[i], _ = attachUser(t, g, units.KB(1000*(i+1)), 400, -60)
		}
		for i := 0; i < 100 && !g.AllDone(); i++ {
			if _, err := g.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if !g.AllDone() {
			t.Fatal("run did not finish")
		}
		stats := make([]Stats, len(eps))
		payloads := make([][]byte, len(eps))
		for i := range eps {
			stats[i], _ = g.StatsFor(i)
			payloads[i] = eps[i].Payload()
		}
		return stats, payloads
	}

	syncStats, syncPayloads := run(testConfig())
	asyncStats, asyncPayloads := run(asyncConfig())
	for i := range syncStats {
		if syncStats[i].SentKB != asyncStats[i].SentKB {
			t.Errorf("user %d: sentKB sync %v != async %v", i, syncStats[i].SentKB, asyncStats[i].SentKB)
		}
		if syncStats[i].RebufferSec != asyncStats[i].RebufferSec {
			t.Errorf("user %d: rebuffer sync %v != async %v", i, syncStats[i].RebufferSec, asyncStats[i].RebufferSec)
		}
		if len(syncPayloads[i]) != len(asyncPayloads[i]) {
			t.Errorf("user %d: payload sync %d bytes != async %d bytes", i, len(syncPayloads[i]), len(asyncPayloads[i]))
		}
		if err := Verify(asyncPayloads[i]); err != nil {
			t.Errorf("user %d async payload: %v", i, err)
		}
	}
}

// flakyReporter drops its report during [from, to) slots, then recovers.
type flakyReporter struct {
	*LocalEndpoint
	calls    int
	from, to int
}

func (e *flakyReporter) Report() (Report, bool) {
	n := e.calls
	e.calls++
	if n >= e.from && n < e.to {
		return Report{}, false
	}
	return e.LocalEndpoint.Report()
}

// TestStaleReportGraceReattaches: a report dropout shorter than the grace
// window must not detach the user; service resumes and the reattach is
// counted.
func TestStaleReportGraceReattaches(t *testing.T) {
	inner, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	if err != nil {
		t.Fatal(err)
	}
	// 60 MB at ≤5 MB/slot keeps the session alive well past the dropout
	// window at slots 2..6.
	ep := &flakyReporter{LocalEndpoint: inner, from: 2, to: 2 + DefaultStaleGraceSlots}
	g, _ := New(testConfig(), sched.NewDefault())
	src, _ := NewPatternSource(60000)
	id, err := g.Attach(ep, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := g.StatsFor(id)
	if st.Detached {
		t.Fatalf("user detached during grace window (reason %q)", st.DetachReason)
	}
	if !g.AllDone() {
		t.Fatal("session did not complete after reattach")
	}
	if got := inner.ReceivedBytes(); got != 60_000_000 {
		t.Errorf("received %d bytes, want 60000000", got)
	}
	d := g.Diagnostics()
	if d.Reattaches != 1 {
		t.Errorf("reattaches = %d, want 1", d.Reattaches)
	}
	if d.StaleSlots != DefaultStaleGraceSlots {
		t.Errorf("stale slots = %d, want %d", d.StaleSlots, DefaultStaleGraceSlots)
	}
}

// TestStaleReportDetachesAfterGrace: a report that never comes back
// detaches the user exactly one slot past the grace window, with the
// stale reason.
func TestStaleReportDetachesAfterGrace(t *testing.T) {
	inner, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	if err != nil {
		t.Fatal(err)
	}
	ep := &flakyReporter{LocalEndpoint: inner, from: 1, to: 1 << 30}
	g, _ := New(testConfig(), sched.NewDefault())
	src, _ := NewPatternSource(100000)
	id, err := g.Attach(ep, src)
	if err != nil {
		t.Fatal(err)
	}
	detachSlot := -1
	for i := 0; i < 20; i++ {
		g.Step()
		if st, _ := g.StatsFor(id); st.Detached {
			detachSlot = i
			if st.DetachReason != DetachStale {
				t.Errorf("detach reason = %q, want %q", st.DetachReason, DetachStale)
			}
			break
		}
	}
	// Reports drop from slot 1; grace covers slots 1..1+grace-1, so the
	// detach lands at slot 1+grace.
	if want := 1 + DefaultStaleGraceSlots; detachSlot != want {
		t.Errorf("stale user detached at slot %d, want %d", detachSlot, want)
	}
	if d := g.Diagnostics(); d.StaleDetaches != 1 {
		t.Errorf("stale detaches = %d, want 1", d.StaleDetaches)
	}
}

// recordingEndpoint logs the slot of every Deliver attempt and always
// fails transiently, exposing the backoff schedule.
type recordingEndpoint struct {
	g     *Gateway
	slots []int
}

func (e *recordingEndpoint) Report() (Report, bool) { return Report{Sig: -60, Rate: 400}, true }

func (e *recordingEndpoint) Deliver(p []byte) error {
	e.slots = append(e.slots, e.g.slot)
	return Transient(errors.New("always failing"))
}

// TestExponentialBackoffSchedule pins the deterministic retry spacing:
// attempts at slots 0, 2, 5, 10, 19 (backoff 1, 2, 4, 8 capped), then the
// breaker opens on the fifth consecutive failure.
func TestExponentialBackoffSchedule(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	ep := &recordingEndpoint{g: g}
	src, _ := NewPatternSource(100000)
	id, err := g.Attach(ep, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		g.Step()
	}
	want := []int{0, 2, 5, 10, 19}
	if len(ep.slots) != len(want) {
		t.Fatalf("deliver attempts at slots %v, want %v", ep.slots, want)
	}
	for i := range want {
		if ep.slots[i] != want[i] {
			t.Fatalf("deliver attempts at slots %v, want %v", ep.slots, want)
		}
	}
	st, _ := g.StatsFor(id)
	if !st.Detached || st.DetachReason != DetachBreaker {
		t.Errorf("user detached=%v reason=%q, want breaker detach", st.Detached, st.DetachReason)
	}
}

// TestClassify pins the error classification table.
func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{Transient(errors.New("x")), TransientError},
		{Fatal(errors.New("x")), FatalError},
		{errors.New("unknown"), TransientError},
		{timeoutError{}, TransientError},
	}
	for i, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("case %d: Classify(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}

// timeoutError mimics a net.Error timeout.
type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }
