package gateway

import (
	"testing"
)

// FuzzParseHello checks the handshake parser never panics and that
// accepted handshakes carry positive parameters.
func FuzzParseHello(f *testing.F) {
	seeds := []string{
		"HELLO 2000 400\n",
		"HELLO 0 0\n",
		"HELLO -1 400\n",
		"HELLO 1e9 1e9\n",
		"GARBAGE\n",
		"HELLO\n",
		"HELLO 1 2 3\n",
		"hello 2000 400\n",
		"HELLO NaN 400\n",
		"HELLO Inf 400\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		h, err := parseHello(line)
		if err != nil {
			return
		}
		if h.VideoKB <= 0 || h.Rate <= 0 {
			t.Fatalf("parseHello(%q) accepted non-positive params: %+v", line, h)
		}
	})
}

// FuzzParseSig checks the control-line parser never panics and that
// every accepted SIG value is finite — NaN or Inf reaching the radio
// model would poison every downstream energy computation.
func FuzzParseSig(f *testing.F) {
	seeds := []string{
		"SIG -60\n",
		"SIG -75.5\n",
		"SIG 0\n",
		"SIG NaN\n",
		"SIG Inf\n",
		"SIG -Inf\n",
		"SIG\n",
		"SIG -60 extra\n",
		"sig -60\n",
		"GARBAGE\n",
		"DATA 5\n",
		"SIG 1e309\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		dbm, ok := parseSig(line)
		if !ok {
			return
		}
		if !finite(float64(dbm)) {
			t.Fatalf("parseSig(%q) accepted non-finite value %v", line, dbm)
		}
	})
}
