package gateway

import (
	"testing"
)

// FuzzParseHello checks the handshake parser never panics and that
// accepted handshakes carry positive parameters.
func FuzzParseHello(f *testing.F) {
	seeds := []string{
		"HELLO 2000 400\n",
		"HELLO 0 0\n",
		"HELLO -1 400\n",
		"HELLO 1e9 1e9\n",
		"GARBAGE\n",
		"HELLO\n",
		"HELLO 1 2 3\n",
		"hello 2000 400\n",
		"HELLO NaN 400\n",
		"HELLO Inf 400\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		h, err := parseHello(line)
		if err != nil {
			return
		}
		if h.VideoKB <= 0 || h.Rate <= 0 {
			t.Fatalf("parseHello(%q) accepted non-positive params: %+v", line, h)
		}
	})
}
