package gateway

import (
	"fmt"
	"io"
	"sync"

	"jointstream/internal/signal"
	"jointstream/internal/units"
)

// LocalEndpoint is an in-memory Endpoint for tests and examples: reports
// follow a signal.Trace advanced by the caller, and delivered bytes are
// counted (and optionally retained).
type LocalEndpoint struct {
	mu        sync.Mutex
	trace     signal.Trace
	rate      units.KBps
	slot      int
	received  int64
	retain    bool
	payload   []byte
	connected bool
}

// NewLocalEndpoint builds an endpoint whose RSSI follows trace and whose
// required rate is fixed. retain keeps delivered payloads in memory for
// inspection.
func NewLocalEndpoint(trace signal.Trace, rate units.KBps, retain bool) (*LocalEndpoint, error) {
	if trace == nil {
		return nil, fmt.Errorf("gateway: nil trace")
	}
	if rate <= 0 {
		return nil, fmt.Errorf("gateway: non-positive rate %v", rate)
	}
	return &LocalEndpoint{trace: trace, rate: rate, retain: retain, connected: true}, nil
}

// Advance moves the endpoint's channel to the next slot.
func (e *LocalEndpoint) Advance() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.slot++
}

// Disconnect marks the endpoint as gone; subsequent Report calls return
// ok=false.
func (e *LocalEndpoint) Disconnect() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.connected = false
}

// Report implements Endpoint.
func (e *LocalEndpoint) Report() (Report, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.connected {
		return Report{}, false
	}
	return Report{Sig: e.trace.At(e.slot), Rate: e.rate}, true
}

// Deliver implements Endpoint.
func (e *LocalEndpoint) Deliver(p []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.connected {
		return Fatal(fmt.Errorf("gateway: endpoint disconnected"))
	}
	e.received += int64(len(p))
	if e.retain {
		e.payload = append(e.payload, p...)
	}
	return nil
}

// ReceivedBytes returns the total bytes delivered so far.
func (e *LocalEndpoint) ReceivedBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.received
}

// Payload returns the retained delivered bytes (nil unless retain was set).
func (e *LocalEndpoint) Payload() []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := make([]byte, len(e.payload))
	copy(cp, e.payload)
	return cp
}

// PatternSource yields a deterministic byte pattern of a fixed total size,
// emulating a video file fetched from the origin server.
type PatternSource struct {
	remaining int64
	next      byte
}

// NewPatternSource builds a source of size KB of patterned data.
func NewPatternSource(size units.KB) (*PatternSource, error) {
	if size <= 0 {
		return nil, fmt.Errorf("gateway: non-positive source size %v", size)
	}
	return &PatternSource{remaining: int64(float64(size) * 1000)}, nil
}

// Read implements Source (io.Reader semantics).
func (s *PatternSource) Read(p []byte) (int, error) {
	if s.remaining == 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > s.remaining {
		n = int(s.remaining)
	}
	for i := 0; i < n; i++ {
		p[i] = s.next
		s.next++
	}
	s.remaining -= int64(n)
	if s.remaining == 0 {
		return n, io.EOF
	}
	return n, nil
}

// Verify checks that a delivered payload matches the pattern a
// PatternSource of at least len(payload) bytes would have produced,
// confirming end-to-end integrity through the gateway.
func Verify(payload []byte) error {
	var want byte
	for i, b := range payload {
		if b != want {
			return fmt.Errorf("gateway: payload corrupt at byte %d: got %d want %d", i, b, want)
		}
		want++
	}
	return nil
}
