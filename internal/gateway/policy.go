package gateway

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// This file implements the gateway's degradation policy: how the serving
// path survives the client-side variability real cellular devices exhibit
// (stalls, flaps, vanishing reports) instead of assuming the paper's
// ideal always-reporting, always-absorbing device model.
//
// Three mechanisms compose:
//
//   - Stale-report grace: a user whose Report goes missing keeps its last
//     good report for StaleGraceSlots slots under conservative admission
//     (rate-proportional allocation only, no opportunistic prefetch)
//     before it is detached. Flapping clients that report again inside
//     the window reattach with no loss of session state.
//
//   - Transient-error backoff: a classified-transient Deliver failure
//     does not detach the user; it schedules a retry after an
//     exponentially growing number of slots (BackoffBaseSlots doubling up
//     to BackoffMaxSlots). A success resets the streak.
//
//   - Circuit breaker: BreakerTrips consecutive transient failures —
//     delivery errors or missed slot deadlines — open the breaker and
//     detach the user for good, bounding how long a flapping or stalled
//     endpoint can consume grants.
//
// Fatal errors (closed connections, EPIPE-class failures) detach
// immediately, as before.

// Policy tunes the gateway's degraded-mode behavior. The zero value
// selects the defaults below; set a field negative to force zero (e.g.
// StaleGraceSlots: -1 restores the legacy detach-on-first-missing-report
// behavior).
type Policy struct {
	// StaleGraceSlots is how many consecutive slots a missing report is
	// papered over with the last good one before the user is detached.
	StaleGraceSlots int
	// BackoffBaseSlots is the retry delay after the first transient
	// delivery failure; each further consecutive failure doubles it up to
	// BackoffMaxSlots.
	BackoffBaseSlots int
	// BackoffMaxSlots caps the exponential backoff.
	BackoffMaxSlots int
	// BreakerTrips is the number of consecutive transient failures
	// (delivery errors or stalled-delivery slots) that opens the circuit
	// breaker and detaches the user.
	BreakerTrips int
	// AsyncDelivery moves Deliver calls onto one worker goroutine per
	// endpoint so a stalled reader can never block the slot tick; Step
	// waits at most SlotDeadline for the slot's deliveries and treats
	// laggards as in-flight (their outcome is committed when observed).
	AsyncDelivery bool
	// SlotDeadline is how long an async Step waits for the slot's
	// deliveries before moving on.
	SlotDeadline time.Duration
	// ShedMaxPerSlot enables load shedding when positive: when the count
	// of tick-deadline misses inside the recent ShedMissWindowSlots slots
	// reaches ShedMissThreshold, up to this many in-service sessions are
	// detached per slot (lowest playback buffer first, newest on ties).
	// Zero (the default) disables shedding entirely.
	ShedMaxPerSlot int
	// ShedMissWindowSlots is the length of the sliding deadline-miss
	// window the shedder watches. Only meaningful when ShedMaxPerSlot > 0.
	ShedMissWindowSlots int
	// ShedMissThreshold is how many misses inside the window trigger a
	// shed. Only meaningful when ShedMaxPerSlot > 0.
	ShedMissThreshold int
}

// Default policy values.
const (
	DefaultStaleGraceSlots     = 5
	DefaultBackoffBaseSlots    = 1
	DefaultBackoffMaxSlots     = 8
	DefaultBreakerTrips        = 5
	DefaultSlotDeadline        = 50 * time.Millisecond
	DefaultShedMissWindowSlots = 16
	DefaultShedMissThreshold   = 8
)

// withDefaults resolves the zero/negative conventions.
func (p Policy) withDefaults() Policy {
	resolve := func(v *int, def int) {
		if *v == 0 {
			*v = def
		} else if *v < 0 {
			*v = 0
		}
	}
	resolve(&p.StaleGraceSlots, DefaultStaleGraceSlots)
	resolve(&p.BackoffBaseSlots, DefaultBackoffBaseSlots)
	resolve(&p.BackoffMaxSlots, DefaultBackoffMaxSlots)
	resolve(&p.BreakerTrips, DefaultBreakerTrips)
	if p.SlotDeadline == 0 {
		p.SlotDeadline = DefaultSlotDeadline
	} else if p.SlotDeadline < 0 {
		p.SlotDeadline = 0
	}
	// Shedding is opt-in: the window and threshold only resolve to their
	// defaults when a shed budget was set.
	if p.ShedMaxPerSlot < 0 {
		p.ShedMaxPerSlot = 0
	}
	if p.ShedMaxPerSlot > 0 {
		resolve(&p.ShedMissWindowSlots, DefaultShedMissWindowSlots)
		resolve(&p.ShedMissThreshold, DefaultShedMissThreshold)
	}
	return p
}

// Validate checks the policy (after default resolution anything goes, so
// this only rejects nonsensical explicit combinations).
func (p Policy) Validate() error {
	if p.AsyncDelivery && p.SlotDeadline < 0 {
		return fmt.Errorf("gateway: async delivery needs a non-negative slot deadline")
	}
	return nil
}

// ErrorClass partitions delivery errors for the retry path.
type ErrorClass int

// Delivery error classes.
const (
	// TransientError marks a failure worth retrying: timeouts, short
	// writes, injected drops. The user stays attached and backs off.
	TransientError ErrorClass = iota
	// FatalError marks a dead endpoint: closed or reset connections. The
	// user is detached immediately.
	FatalError
)

// String implements fmt.Stringer.
func (c ErrorClass) String() string {
	switch c {
	case TransientError:
		return "transient"
	case FatalError:
		return "fatal"
	default:
		return fmt.Sprintf("ErrorClass(%d)", int(c))
	}
}

// classedError carries an explicit class through an error chain.
type classedError struct {
	err   error
	class ErrorClass
}

func (e *classedError) Error() string { return e.err.Error() }
func (e *classedError) Unwrap() error { return e.err }

// Transient marks err as retryable for Classify.
func Transient(err error) error { return &classedError{err: err, class: TransientError} }

// Fatal marks err as non-retryable for Classify.
func Fatal(err error) error { return &classedError{err: err, class: FatalError} }

// Classify maps a delivery error to its class. Explicit marks (Transient,
// Fatal) win; otherwise network timeouts are transient, closed/reset
// connections are fatal, and anything unrecognized defaults to transient
// so the breaker — not a single glitch — decides detachment.
func Classify(err error) ErrorClass {
	var ce *classedError
	if errors.As(err, &ce) {
		return ce.class
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return TransientError
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return FatalError
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		// Non-timeout socket-level failures (EPIPE, ECONNRESET, refused)
		// mean the peer is gone.
		return FatalError
	}
	return TransientError
}

// DetachReason records why the gateway gave up on a user.
type DetachReason string

// Detach reasons surfaced in Stats and the monitoring API.
const (
	DetachNone    DetachReason = ""
	DetachFatal   DetachReason = "fatal-error"
	DetachBreaker DetachReason = "breaker-open"
	DetachStale   DetachReason = "stale-report"
	DetachShed    DetachReason = "shed"
)

// Diag aggregates the gateway's degradation counters across users. All
// counters are monotone; DegradedSlots counts slots in which at least one
// attached user was served in a degraded mode (stale report, backoff, or
// in-flight delivery).
type Diag struct {
	TransientErrors int
	FatalErrors     int
	MissedDeadlines int
	StaleSlots      int
	Reattaches      int
	BreakerOpens    int
	StaleDetaches   int
	DegradedSlots   int
	// Open-system serving counters: sessions admitted through the
	// admission controller, rejected by it, detached by the load shedder,
	// and completed while draining.
	Admitted int
	Rejected int
	Shed     int
	Drained  int
}

// Diagnostics returns a snapshot of the gateway's degradation counters.
func (g *Gateway) Diagnostics() Diag {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.diag
}
