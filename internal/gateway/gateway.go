// Package gateway implements the paper's Fig. 1 framework as a running
// pipeline: the four components — Data Receiver, Information Collector,
// Scheduler and Data Transmitter — wired around any sched.Scheduler.
//
// The gateway sits between origin content sources and per-user downlinks.
// Each slot it (1) ingests content from the sources into per-user queues
// (Data Receiver, with a video/non-video classifier standing in for the
// resource-slicing of CellSlice [26]), (2) snapshots every user's
// cross-layer report — RSSI and required bit-rate — (Information
// Collector, standing in for RRC signaling plus DPI middleboxes [2]),
// (3) runs the configured allocation algorithm (Scheduler), and
// (4) pushes the granted data units onto the user links (Data
// Transmitter).
//
// The pipeline is transport-agnostic: users are attached through the
// Endpoint interface. The package provides an in-memory LocalEndpoint for
// tests and examples; cmd/jstream-gateway wraps TCP connections in the
// same interface for a live demo.
package gateway

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"jointstream/internal/metrics"
	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// Report is one user's cross-layer state sampled by the Information
// Collector at a slot boundary.
type Report struct {
	// Sig is the device-reported RSSI.
	Sig units.DBm
	// Rate is the required video data rate extracted from the session
	// (the paper obtains it from DPI middleboxes).
	Rate units.KBps
}

// Endpoint is one attached user device.
type Endpoint interface {
	// Report returns the user's current cross-layer report. ok=false
	// marks a missing report; the gateway papers over up to
	// Policy.StaleGraceSlots consecutive misses with the last good report
	// (conservative admission) before detaching the user.
	Report() (r Report, ok bool)
	// Deliver pushes one slot's granted bytes to the device. Errors are
	// classified (see Classify): fatal ones detach the user immediately,
	// transient ones route through the backoff/breaker retry path.
	Deliver(p []byte) error
}

// Source supplies downlink content for one user, emulating the stream
// from the origin server. Read semantics follow io.Reader; io.EOF marks
// the end of the video.
type Source interface {
	Read(p []byte) (int, error)
}

// Class labels a flow for the Data Receiver's resource slicing.
type Class int

// Flow classes: Video flows are scheduled by the framework; Other flows
// bypass the scheduler (the paper's framework only manages video traffic).
const (
	Video Class = iota
	Other
)

// Config parameterizes a Gateway.
type Config struct {
	// Tau is the slot length in seconds.
	Tau units.Seconds
	// Unit is the data-unit size δ (KB).
	Unit units.KB
	// Capacity is the base-station budget S (KB/s).
	Capacity units.KBps
	// Radio converts reported RSSI into link rate and energy price.
	Radio radio.Model
	// RRC, when non-zero (Pd > 0), enables device-energy accounting: each
	// attached user gets an RRC machine and the gateway tracks its
	// transmission (Eq. 3) and tail (Eq. 4) energy. Leave zero to skip.
	RRC rrc.Profile
	// QueueCap bounds each user's Data Receiver queue in KB (prefetched
	// from the source but not yet transmitted). Must exceed one slot's
	// worth of the fastest link.
	QueueCap units.KB
	// Policy tunes the degraded-mode behavior: stale-report grace,
	// transient-error backoff, the flap circuit breaker and asynchronous
	// per-endpoint delivery. The zero value selects the defaults (see
	// Policy).
	Policy Policy
	// MaxSessions caps concurrent in-service sessions: Attach rejects
	// further users with a typed *OverCapacityError once the cap is
	// reached. 0 means unlimited.
	MaxSessions int
	// AdmitHeadroomFrac, when positive, enables the Eq.-1-style admission
	// check: a new session is rejected when the summed required rates of
	// every in-service session plus its own would exceed
	// AdmitHeadroomFrac × Capacity.
	AdmitHeadroomFrac float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tau <= 0 {
		return fmt.Errorf("gateway: non-positive tau %v", c.Tau)
	}
	if c.Unit <= 0 {
		return fmt.Errorf("gateway: non-positive unit %v", c.Unit)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("gateway: non-positive capacity %v", c.Capacity)
	}
	if c.Radio.Throughput == nil || c.Radio.Power == nil {
		return fmt.Errorf("gateway: radio model not fully specified")
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("gateway: non-positive queue cap %v", c.QueueCap)
	}
	if c.MaxSessions < 0 {
		return fmt.Errorf("gateway: negative session cap %d", c.MaxSessions)
	}
	if c.AdmitHeadroomFrac < 0 {
		return fmt.Errorf("gateway: negative admission headroom %v", c.AdmitHeadroomFrac)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	return c.RRC.Validate()
}

// trackEnergy reports whether device-energy accounting is enabled.
func (c Config) trackEnergy() bool { return c.RRC.Pd > 0 }

// user is the gateway's per-session state.
type user struct {
	id       int
	ep       Endpoint
	src      Source
	queue    []byte // Data Receiver buffer
	srcDone  bool   // source exhausted
	detached bool
	sentKB   units.KB
	// buffered playback estimate maintained from deliveries and wall
	// slots, used to populate sched.User.BufferSec.
	bufferSec units.Seconds
	// rebufferSec accrues τ for every slot in which a started,
	// unfinished session's playback estimate sits at zero — the
	// gateway-side analogue of the simulator's c_i(n).
	rebufferSec units.Seconds
	// machine and the energy tallies are populated only when the gateway
	// was configured with an RRC profile.
	machine     *rrc.Machine
	transEnergy units.MJ
	tailEnergy  units.MJ

	// Degradation-policy state.
	lastReport   Report       // last good report, reused during the grace window
	haveReport   bool         // lastReport is valid
	staleSlots   int          // consecutive slots with a missing report
	failStreak   int          // consecutive transient strikes (errors or stalled slots)
	backoffUntil int          // slot before which the user is not scheduled
	detachReason DetachReason // why the user was detached, if it was
	inFlight     bool         // an async delivery is outstanding
	worker       *deliveryWorker
	// Per-user diagnostics mirrored into Stats.
	transientErrors int
	missedSlots     int
	// drainCounted marks a session already credited to Diag.Drained.
	drainCounted bool
	// folded marks a session whose lifetime rebuffer/energy totals have
	// landed in the windowed session histograms (fold happens once, at
	// natural completion or detach, whichever comes first).
	folded bool
}

// Stats summarizes one user's progress.
type Stats struct {
	ID        int
	SentKB    units.KB
	QueuedKB  units.KB
	BufferSec units.Seconds
	// RebufferSec is the accumulated playback stall estimate: τ per slot
	// a started, unfinished session spent with an empty playback buffer.
	RebufferSec units.Seconds
	Done        bool // source drained, queue empty, nothing in flight
	Detached    bool
	// DetachReason explains a detachment (empty while attached).
	DetachReason DetachReason
	// TransientErrors counts classified-transient delivery failures that
	// were retried rather than detaching the user.
	TransientErrors int
	// MissedSlots counts slots in which the user's grant was skipped
	// because a previous delivery was still in flight.
	MissedSlots int
	// TransEnergy and TailEnergy are populated when the gateway was
	// configured with an RRC profile (Config.RRC).
	TransEnergy units.MJ
	TailEnergy  units.MJ
}

// Energy returns the user's total accounted energy.
func (s Stats) Energy() units.MJ { return s.TransEnergy + s.TailEnergy }

// Gateway is the framework instance. Attach users, then call Step once
// per slot (or drive it from a time.Ticker).
type Gateway struct {
	mu    sync.Mutex
	cfg   Config
	sched sched.Scheduler
	users []*user
	slot  int
	// policy is cfg.Policy with defaults resolved.
	policy Policy
	// diag aggregates the degradation counters across users.
	diag Diag
	// wake is the async delivery workers' completion bell (cap 1; a
	// dropped ring is harmless because the collector scans every user).
	wake chan struct{}
	// bypassKB counts non-video bytes forwarded without scheduling.
	bypassKB units.KB

	// Open-system serving state (see admission.go).
	draining      bool
	tickHist      *metrics.WindowedHist // sliding Step wall-duration (ms)
	tickHistSlots int                   // slots since the last rotation
	missRing      []bool                // last ShedMissWindowSlots deadline outcomes
	missHead      int
	missCount     int
	// Sliding per-session quality histograms: lifetime rebuffer (sec) and
	// accounted energy (mJ) fold in when a session ends (completion or
	// detach), rotating on the tick-histogram cadence. Serves /metrics.
	rebufHist  *metrics.WindowedHist
	energyHist *metrics.WindowedHist
	endedTotal int
}

// New builds a Gateway around the given scheduling algorithm.
func New(cfg Config, s sched.Scheduler) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, errors.New("gateway: nil scheduler")
	}
	rebuf, energy := newSessionHists()
	return &Gateway{
		cfg:        cfg,
		sched:      s,
		policy:     cfg.Policy.withDefaults(),
		wake:       make(chan struct{}, 1),
		tickHist:   newTickHist(),
		rebufHist:  rebuf,
		energyHist: energy,
	}, nil
}

// Attach registers a user with its content source and downlink endpoint,
// returning the user id. Admission control applies: a draining gateway
// rejects with ErrDraining, and the session cap / capacity headroom
// checks (Config.MaxSessions, Config.AdmitHeadroomFrac) reject with a
// typed *OverCapacityError matching ErrOverCapacity.
func (g *Gateway) Attach(ep Endpoint, src Source) (int, error) {
	if ep == nil || src == nil {
		return 0, errors.New("gateway: nil endpoint or source")
	}
	// The headroom check wants the newcomer's required rate; a missing
	// report admits at rate 0 (the stale-report machinery takes over once
	// attached). The endpoint is only probed when the check is configured,
	// so endpoints with stateful Report implementations see no extra call
	// on a gateway without admission control.
	var rate units.KBps
	if g.cfg.AdmitHeadroomFrac > 0 {
		if rep, ok := ep.Report(); ok {
			rate = rep.Rate
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.admissible(rate); err != nil {
		g.diag.Rejected++
		return 0, err
	}
	u := &user{id: len(g.users), ep: ep, src: src}
	if g.cfg.trackEnergy() {
		m, err := rrc.NewMachine(g.cfg.RRC)
		if err != nil {
			return 0, err
		}
		u.machine = m
	}
	g.users = append(g.users, u)
	g.diag.Admitted++
	return u.id, nil
}

// Forward carries one non-video packet through the gateway unscheduled,
// emulating the resource-slicing split: only Video-class traffic goes
// through the Scheduler. It returns the class the packet was given.
func (g *Gateway) Forward(class Class, payload []byte, deliver func([]byte) error) (Class, error) {
	if class != Video {
		if err := deliver(payload); err != nil {
			return class, fmt.Errorf("gateway: bypass delivery: %w", err)
		}
		g.mu.Lock()
		g.bypassKB += units.KB(float64(len(payload)) / 1000)
		g.mu.Unlock()
		return Other, nil
	}
	return Video, errors.New("gateway: video traffic must flow through an attached Source")
}

// BypassedKB reports how much non-video traffic was forwarded unscheduled.
func (g *Gateway) BypassedKB() units.KB {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bypassKB
}

// Slot returns the number of completed slots.
func (g *Gateway) Slot() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.slot
}

// Step advances the gateway by one slot: receive → collect → schedule →
// transmit. It returns the per-user allocations in data units.
//
// Degraded modes (see Policy): users with a missing report ride the
// stale-report grace window under conservative admission; users backing
// off after a transient delivery error, and users whose async delivery is
// still in flight, sit the slot out; the circuit breaker detaches users
// whose strikes exhaust Policy.BreakerTrips.
func (g *Gateway) Step() ([]int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	tickStart := time.Now()
	missedDeadline := false

	// 0. Apply async delivery outcomes that landed since the last slot.
	if g.policy.AsyncDelivery {
		g.collectCompletions(-1)
	}

	// 1. Data Receiver: top up each user's queue from its source.
	for _, u := range g.users {
		g.fill(u)
	}

	// 2. Information Collector: build the cross-layer slot view.
	slot := sched.Slot{
		N:             g.slot,
		Tau:           g.cfg.Tau,
		Unit:          g.cfg.Unit,
		CapacityUnits: int(float64(g.cfg.Capacity) * float64(g.cfg.Tau) / float64(g.cfg.Unit)),
		Users:         make([]sched.User, len(g.users)),
	}
	reports := make([]Report, len(g.users))
	degraded := false
	for i, u := range g.users {
		slot.Users[i] = sched.User{Index: i}
		if u.detached {
			continue
		}
		rep, ok := u.ep.Report()
		if ok {
			if u.staleSlots > 0 {
				// The report flapped back inside the grace window.
				g.diag.Reattaches++
				u.staleSlots = 0
			}
			u.lastReport, u.haveReport = rep, true
		} else {
			u.staleSlots++
			g.diag.StaleSlots++
			degraded = true
			if u.staleSlots > g.policy.StaleGraceSlots {
				g.diag.StaleDetaches++
				g.detach(u, DetachStale)
				continue
			}
			if !u.haveReport {
				continue // nothing to reuse yet; sit the slot out
			}
			rep = u.lastReport
		}
		reports[i] = rep
		if u.inFlight {
			// Previous delivery still in flight past its deadline: the
			// user misses this slot's grant, and the stall strikes the
			// breaker.
			u.missedSlots++
			g.diag.MissedDeadlines++
			g.recordStrike(u)
			degraded = true
			continue
		}
		if g.slot < u.backoffUntil {
			degraded = true
			continue
		}
		queuedKB := units.KB(float64(len(u.queue)) / 1000)
		link := g.cfg.Radio.Throughput.Throughput(rep.Sig)
		maxUnits := int(float64(link) * float64(g.cfg.Tau) / float64(g.cfg.Unit))
		queueUnits := int(float64(queuedKB) / float64(g.cfg.Unit))
		if u.srcDone {
			// The source is exhausted: round the tail up so a video that is
			// not an exact multiple of the allocation unit can still finish.
			// The transmitter clamps the grant to the actual queue bytes.
			queueUnits = ceilDiv(float64(queuedKB), float64(g.cfg.Unit))
		}
		if maxUnits > queueUnits {
			maxUnits = queueUnits
		}
		if u.staleSlots > 0 {
			// Conservative admission on a stale report: grant at most the
			// real-time need, no opportunistic prefetch on a link state we
			// can no longer observe.
			needUnits := ceilDiv(float64(rep.Rate)*float64(g.cfg.Tau), float64(g.cfg.Unit))
			if maxUnits > needUnits {
				maxUnits = needUnits
			}
		}
		slot.Users[i] = sched.User{
			Index:       i,
			Active:      queuedKB > 0,
			Sig:         rep.Sig,
			LinkRate:    link,
			EnergyPerKB: g.cfg.Radio.Power.EnergyPerKB(rep.Sig),
			Rate:        rep.Rate,
			BufferSec:   u.bufferSec,
			RemainingKB: queuedKB,
			MaxUnits:    maxUnits,
		}
	}

	// 3. Scheduler.
	alloc := make([]int, len(g.users))
	g.sched.Allocate(&slot, alloc)
	// Defensive clamp, mirroring the simulator's non-strict mode.
	total := 0
	for i := range alloc {
		if alloc[i] < 0 {
			alloc[i] = 0
		}
		if alloc[i] > slot.Users[i].MaxUnits {
			alloc[i] = slot.Users[i].MaxUnits
		}
		total += alloc[i]
	}
	for i := len(alloc) - 1; i >= 0 && total > slot.CapacityUnits; i-- {
		cut := alloc[i]
		if cut > total-slot.CapacityUnits {
			cut = total - slot.CapacityUnits
		}
		alloc[i] -= cut
		total -= cut
	}

	// 4. Data Transmitter.
	submitted := 0
	for i, u := range g.users {
		// Age the playback estimate by one slot first.
		if u.bufferSec > g.cfg.Tau {
			u.bufferSec -= g.cfg.Tau
		} else {
			u.bufferSec = 0
		}
		if alloc[i] == 0 || u.detached {
			if u.machine != nil && !u.detached {
				u.tailEnergy += u.machine.IdleSlot(g.cfg.Tau)
			}
			continue
		}
		kb := float64(alloc[i]) * float64(g.cfg.Unit)
		nbytes := int(kb * 1000)
		if nbytes > len(u.queue) {
			nbytes = len(u.queue)
		}
		if g.policy.AsyncDelivery {
			// Snapshot the grant and hand it to the endpoint's worker;
			// energy is spent at transmission time whether or not the
			// device drains its socket, playback progress is credited
			// when the delivery completes.
			payload := make([]byte, nbytes)
			copy(payload, u.queue[:nbytes])
			u.queue = u.queue[nbytes:]
			if u.machine != nil {
				u.transEnergy += g.cfg.Radio.TransmissionEnergy(slot.Users[i].Sig, units.KB(float64(nbytes)/1000))
				u.machine.Transfer()
			}
			g.submitAsync(u, deliveryJob{payload: payload, slot: g.slot, rate: reports[i].Rate})
			submitted++
			continue
		}
		payload := u.queue[:nbytes]
		if err := u.ep.Deliver(payload); err != nil {
			g.deliveryFailed(u, err)
			continue
		}
		g.deliverySucceeded(u)
		u.queue = u.queue[nbytes:]
		deliveredKB := units.KB(float64(nbytes) / 1000)
		u.sentKB += deliveredKB
		if rate := reports[i].Rate; rate > 0 {
			u.bufferSec += units.Seconds(float64(deliveredKB) / float64(rate))
		}
		if u.machine != nil {
			u.transEnergy += g.cfg.Radio.TransmissionEnergy(slot.Users[i].Sig, deliveredKB)
			u.machine.Transfer()
		}
	}
	if submitted > 0 {
		if late := g.awaitSlotDeliveries(g.slot, submitted, g.policy.SlotDeadline); late > 0 {
			degraded = true
			missedDeadline = true
		}
	}

	// 5. Rebuffer accounting: a started, unfinished session with an empty
	// playback estimate stalls for the slot.
	for _, u := range g.users {
		if u.detached || u.sentKB == 0 {
			continue
		}
		done := u.srcDone && len(u.queue) == 0 && !u.inFlight
		if !done && u.bufferSec <= 0 {
			u.rebufferSec += g.cfg.Tau
		}
	}
	if degraded {
		g.diag.DegradedSlots++
	}
	g.maybeShed()
	g.countDrained()
	g.foldFinished()
	g.slot++
	g.noteTick(time.Since(tickStart), missedDeadline)
	return alloc, nil
}

// ceilDiv returns ⌈amount/unit⌉ for positive unit.
func ceilDiv(amount, unit float64) int {
	if amount <= 0 {
		return 0
	}
	n := int(amount / unit)
	if float64(n)*unit < amount {
		n++
	}
	return n
}

// fill tops up a user's receiver queue from its source.
func (g *Gateway) fill(u *user) {
	if u.srcDone || u.detached {
		return
	}
	capBytes := int(float64(g.cfg.QueueCap) * 1000)
	for len(u.queue) < capBytes {
		chunk := make([]byte, capBytes-len(u.queue))
		n, err := u.src.Read(chunk)
		if n > 0 {
			u.queue = append(u.queue, chunk[:n]...)
		}
		if err != nil {
			u.srcDone = true
			return
		}
		if n == 0 {
			return
		}
	}
}

// StatsFor returns a user's progress.
func (g *Gateway) StatsFor(id int) (Stats, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.users) {
		return Stats{}, fmt.Errorf("gateway: unknown user %d", id)
	}
	u := g.users[id]
	return Stats{
		ID:              id,
		SentKB:          u.sentKB,
		QueuedKB:        units.KB(float64(len(u.queue)) / 1000),
		BufferSec:       u.bufferSec,
		RebufferSec:     u.rebufferSec,
		Done:            u.srcDone && len(u.queue) == 0 && !u.inFlight,
		Detached:        u.detached,
		DetachReason:    u.detachReason,
		TransientErrors: u.transientErrors,
		MissedSlots:     u.missedSlots,
		TransEnergy:     u.transEnergy,
		TailEnergy:      u.tailEnergy,
	}, nil
}

// AllDone reports whether every attached user's source is drained and its
// queue empty (or the user detached).
func (g *Gateway) AllDone() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.users) == 0 {
		return false
	}
	for _, u := range g.users {
		if u.detached {
			continue
		}
		if !u.srcDone || len(u.queue) > 0 || u.inFlight {
			return false
		}
	}
	return true
}
