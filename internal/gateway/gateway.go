// Package gateway implements the paper's Fig. 1 framework as a running
// pipeline: the four components — Data Receiver, Information Collector,
// Scheduler and Data Transmitter — wired around any sched.Scheduler.
//
// The gateway sits between origin content sources and per-user downlinks.
// Each slot it (1) ingests content from the sources into per-user queues
// (Data Receiver, with a video/non-video classifier standing in for the
// resource-slicing of CellSlice [26]), (2) snapshots every user's
// cross-layer report — RSSI and required bit-rate — (Information
// Collector, standing in for RRC signaling plus DPI middleboxes [2]),
// (3) runs the configured allocation algorithm (Scheduler), and
// (4) pushes the granted data units onto the user links (Data
// Transmitter).
//
// The pipeline is transport-agnostic: users are attached through the
// Endpoint interface. The package provides an in-memory LocalEndpoint for
// tests and examples; cmd/jstream-gateway wraps TCP connections in the
// same interface for a live demo.
package gateway

import (
	"errors"
	"fmt"
	"sync"

	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/units"
)

// Report is one user's cross-layer state sampled by the Information
// Collector at a slot boundary.
type Report struct {
	// Sig is the device-reported RSSI.
	Sig units.DBm
	// Rate is the required video data rate extracted from the session
	// (the paper obtains it from DPI middleboxes).
	Rate units.KBps
}

// Endpoint is one attached user device.
type Endpoint interface {
	// Report returns the user's current cross-layer report. ok=false
	// marks a disconnected user; the gateway stops scheduling it.
	Report() (r Report, ok bool)
	// Deliver pushes one slot's granted bytes to the device. A delivery
	// error detaches the user.
	Deliver(p []byte) error
}

// Source supplies downlink content for one user, emulating the stream
// from the origin server. Read semantics follow io.Reader; io.EOF marks
// the end of the video.
type Source interface {
	Read(p []byte) (int, error)
}

// Class labels a flow for the Data Receiver's resource slicing.
type Class int

// Flow classes: Video flows are scheduled by the framework; Other flows
// bypass the scheduler (the paper's framework only manages video traffic).
const (
	Video Class = iota
	Other
)

// Config parameterizes a Gateway.
type Config struct {
	// Tau is the slot length in seconds.
	Tau units.Seconds
	// Unit is the data-unit size δ (KB).
	Unit units.KB
	// Capacity is the base-station budget S (KB/s).
	Capacity units.KBps
	// Radio converts reported RSSI into link rate and energy price.
	Radio radio.Model
	// RRC, when non-zero (Pd > 0), enables device-energy accounting: each
	// attached user gets an RRC machine and the gateway tracks its
	// transmission (Eq. 3) and tail (Eq. 4) energy. Leave zero to skip.
	RRC rrc.Profile
	// QueueCap bounds each user's Data Receiver queue in KB (prefetched
	// from the source but not yet transmitted). Must exceed one slot's
	// worth of the fastest link.
	QueueCap units.KB
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tau <= 0 {
		return fmt.Errorf("gateway: non-positive tau %v", c.Tau)
	}
	if c.Unit <= 0 {
		return fmt.Errorf("gateway: non-positive unit %v", c.Unit)
	}
	if c.Capacity <= 0 {
		return fmt.Errorf("gateway: non-positive capacity %v", c.Capacity)
	}
	if c.Radio.Throughput == nil || c.Radio.Power == nil {
		return fmt.Errorf("gateway: radio model not fully specified")
	}
	if c.QueueCap <= 0 {
		return fmt.Errorf("gateway: non-positive queue cap %v", c.QueueCap)
	}
	return c.RRC.Validate()
}

// trackEnergy reports whether device-energy accounting is enabled.
func (c Config) trackEnergy() bool { return c.RRC.Pd > 0 }

// user is the gateway's per-session state.
type user struct {
	id       int
	ep       Endpoint
	src      Source
	queue    []byte // Data Receiver buffer
	srcDone  bool   // source exhausted
	detached bool
	sentKB   units.KB
	// buffered playback estimate maintained from deliveries and wall
	// slots, used to populate sched.User.BufferSec.
	bufferSec units.Seconds
	// machine and the energy tallies are populated only when the gateway
	// was configured with an RRC profile.
	machine     *rrc.Machine
	transEnergy units.MJ
	tailEnergy  units.MJ
}

// Stats summarizes one user's progress.
type Stats struct {
	ID        int
	SentKB    units.KB
	QueuedKB  units.KB
	BufferSec units.Seconds
	Done      bool // source drained and queue empty
	Detached  bool
	// TransEnergy and TailEnergy are populated when the gateway was
	// configured with an RRC profile (Config.RRC).
	TransEnergy units.MJ
	TailEnergy  units.MJ
}

// Energy returns the user's total accounted energy.
func (s Stats) Energy() units.MJ { return s.TransEnergy + s.TailEnergy }

// Gateway is the framework instance. Attach users, then call Step once
// per slot (or drive it from a time.Ticker).
type Gateway struct {
	mu    sync.Mutex
	cfg   Config
	sched sched.Scheduler
	users []*user
	slot  int
	// bypassKB counts non-video bytes forwarded without scheduling.
	bypassKB units.KB
}

// New builds a Gateway around the given scheduling algorithm.
func New(cfg Config, s sched.Scheduler) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, errors.New("gateway: nil scheduler")
	}
	return &Gateway{cfg: cfg, sched: s}, nil
}

// Attach registers a user with its content source and downlink endpoint,
// returning the user id.
func (g *Gateway) Attach(ep Endpoint, src Source) (int, error) {
	if ep == nil || src == nil {
		return 0, errors.New("gateway: nil endpoint or source")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := &user{id: len(g.users), ep: ep, src: src}
	if g.cfg.trackEnergy() {
		m, err := rrc.NewMachine(g.cfg.RRC)
		if err != nil {
			return 0, err
		}
		u.machine = m
	}
	g.users = append(g.users, u)
	return u.id, nil
}

// Forward carries one non-video packet through the gateway unscheduled,
// emulating the resource-slicing split: only Video-class traffic goes
// through the Scheduler. It returns the class the packet was given.
func (g *Gateway) Forward(class Class, payload []byte, deliver func([]byte) error) (Class, error) {
	if class != Video {
		if err := deliver(payload); err != nil {
			return class, fmt.Errorf("gateway: bypass delivery: %w", err)
		}
		g.mu.Lock()
		g.bypassKB += units.KB(float64(len(payload)) / 1000)
		g.mu.Unlock()
		return Other, nil
	}
	return Video, errors.New("gateway: video traffic must flow through an attached Source")
}

// BypassedKB reports how much non-video traffic was forwarded unscheduled.
func (g *Gateway) BypassedKB() units.KB {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bypassKB
}

// Slot returns the number of completed slots.
func (g *Gateway) Slot() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.slot
}

// Step advances the gateway by one slot: receive → collect → schedule →
// transmit. It returns the per-user allocations in data units.
func (g *Gateway) Step() ([]int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()

	// 1. Data Receiver: top up each user's queue from its source.
	for _, u := range g.users {
		g.fill(u)
	}

	// 2. Information Collector: build the cross-layer slot view.
	slot := sched.Slot{
		N:             g.slot,
		Tau:           g.cfg.Tau,
		Unit:          g.cfg.Unit,
		CapacityUnits: int(float64(g.cfg.Capacity) * float64(g.cfg.Tau) / float64(g.cfg.Unit)),
		Users:         make([]sched.User, len(g.users)),
	}
	reports := make([]Report, len(g.users))
	for i, u := range g.users {
		view := sched.User{Index: i}
		if !u.detached {
			if rep, ok := u.ep.Report(); ok {
				reports[i] = rep
				queuedKB := units.KB(float64(len(u.queue)) / 1000)
				link := g.cfg.Radio.Throughput.Throughput(rep.Sig)
				maxUnits := int(float64(link) * float64(g.cfg.Tau) / float64(g.cfg.Unit))
				queueUnits := int(float64(queuedKB) / float64(g.cfg.Unit))
				if maxUnits > queueUnits {
					maxUnits = queueUnits
				}
				view = sched.User{
					Index:       i,
					Active:      queuedKB > 0,
					Sig:         rep.Sig,
					LinkRate:    link,
					EnergyPerKB: g.cfg.Radio.Power.EnergyPerKB(rep.Sig),
					Rate:        rep.Rate,
					BufferSec:   u.bufferSec,
					RemainingKB: queuedKB,
					MaxUnits:    maxUnits,
				}
			} else {
				u.detached = true
			}
		}
		slot.Users[i] = view
	}

	// 3. Scheduler.
	alloc := make([]int, len(g.users))
	g.sched.Allocate(&slot, alloc)
	// Defensive clamp, mirroring the simulator's non-strict mode.
	total := 0
	for i := range alloc {
		if alloc[i] < 0 {
			alloc[i] = 0
		}
		if alloc[i] > slot.Users[i].MaxUnits {
			alloc[i] = slot.Users[i].MaxUnits
		}
		total += alloc[i]
	}
	for i := len(alloc) - 1; i >= 0 && total > slot.CapacityUnits; i-- {
		cut := alloc[i]
		if cut > total-slot.CapacityUnits {
			cut = total - slot.CapacityUnits
		}
		alloc[i] -= cut
		total -= cut
	}

	// 4. Data Transmitter.
	for i, u := range g.users {
		// Age the playback estimate by one slot first.
		if u.bufferSec > g.cfg.Tau {
			u.bufferSec -= g.cfg.Tau
		} else {
			u.bufferSec = 0
		}
		if alloc[i] == 0 || u.detached {
			if u.machine != nil && !u.detached {
				u.tailEnergy += u.machine.IdleSlot(g.cfg.Tau)
			}
			continue
		}
		kb := float64(alloc[i]) * float64(g.cfg.Unit)
		nbytes := int(kb * 1000)
		if nbytes > len(u.queue) {
			nbytes = len(u.queue)
		}
		payload := u.queue[:nbytes]
		if err := u.ep.Deliver(payload); err != nil {
			u.detached = true
			continue
		}
		u.queue = u.queue[nbytes:]
		deliveredKB := units.KB(float64(nbytes) / 1000)
		u.sentKB += deliveredKB
		if rate := reports[i].Rate; rate > 0 {
			u.bufferSec += units.Seconds(float64(deliveredKB) / float64(rate))
		}
		if u.machine != nil {
			u.transEnergy += g.cfg.Radio.TransmissionEnergy(slot.Users[i].Sig, deliveredKB)
			u.machine.Transfer()
		}
	}
	g.slot++
	return alloc, nil
}

// fill tops up a user's receiver queue from its source.
func (g *Gateway) fill(u *user) {
	if u.srcDone || u.detached {
		return
	}
	capBytes := int(float64(g.cfg.QueueCap) * 1000)
	for len(u.queue) < capBytes {
		chunk := make([]byte, capBytes-len(u.queue))
		n, err := u.src.Read(chunk)
		if n > 0 {
			u.queue = append(u.queue, chunk[:n]...)
		}
		if err != nil {
			u.srcDone = true
			return
		}
		if n == 0 {
			return
		}
	}
}

// StatsFor returns a user's progress.
func (g *Gateway) StatsFor(id int) (Stats, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.users) {
		return Stats{}, fmt.Errorf("gateway: unknown user %d", id)
	}
	u := g.users[id]
	return Stats{
		ID:          id,
		SentKB:      u.sentKB,
		QueuedKB:    units.KB(float64(len(u.queue)) / 1000),
		BufferSec:   u.bufferSec,
		Done:        u.srcDone && len(u.queue) == 0,
		Detached:    u.detached,
		TransEnergy: u.transEnergy,
		TailEnergy:  u.tailEnergy,
	}, nil
}

// AllDone reports whether every attached user's source is drained and its
// queue empty (or the user detached).
func (g *Gateway) AllDone() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.users) == 0 {
		return false
	}
	for _, u := range g.users {
		if u.detached {
			continue
		}
		if !u.srcDone || len(u.queue) > 0 {
			return false
		}
	}
	return true
}
