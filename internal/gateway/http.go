package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Handler exposes a running Gateway over HTTP for monitoring:
//
//	GET /healthz        -> 200 "ok"
//	GET /stats          -> JSON array of per-user Stats
//	GET /stats?user=3   -> JSON Stats of one user
//	GET /summary        -> JSON gateway summary (slot count, totals)
//	GET /diag           -> JSON degradation + open-system counters,
//	                       tick-duration p50/p99 (ms), drain state
//	GET /metrics        -> JSON sliding-window session quality: p50/p99
//	                       lifetime rebuffer (sec) and energy (mJ) over
//	                       recently ended sessions, plus tick p50/p99
//
// All endpoints are read-only; the handler is safe to serve while Step is
// being driven from another goroutine (the Gateway is internally locked).
func Handler(gw *Gateway) http.Handler {
	if gw == nil {
		panic("gateway: nil gateway for Handler")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		if q := r.URL.Query().Get("user"); q != "" {
			var id int
			if _, err := fmt.Sscanf(q, "%d", &id); err != nil {
				http.Error(w, "bad user id", http.StatusBadRequest)
				return
			}
			st, err := gw.StatsFor(id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			writeJSON(w, toView(st))
			return
		}
		writeJSON(w, allStats(gw))
	})
	mux.HandleFunc("GET /summary", func(w http.ResponseWriter, r *http.Request) {
		stats := allStats(gw)
		sum := summaryView{
			Slot:      gw.Slot(),
			Users:     len(stats),
			AllDone:   gw.AllDone(),
			BypassKB:  float64(gw.BypassedKB()),
			Scheduler: gw.sched.Name(),
		}
		for _, st := range stats {
			sum.SentKB += st.SentKB
			sum.EnergyMJ += st.TransEnergyMJ + st.TailEnergyMJ
			if st.Detached {
				sum.Detached++
			}
		}
		writeJSON(w, sum)
	})
	mux.HandleFunc("GET /diag", func(w http.ResponseWriter, r *http.Request) {
		d := gw.Diagnostics()
		writeJSON(w, diagView{
			Slot:            gw.Slot(),
			Draining:        gw.Draining(),
			TransientErrors: d.TransientErrors,
			FatalErrors:     d.FatalErrors,
			MissedDeadlines: d.MissedDeadlines,
			StaleSlots:      d.StaleSlots,
			Reattaches:      d.Reattaches,
			BreakerOpens:    d.BreakerOpens,
			StaleDetaches:   d.StaleDetaches,
			DegradedSlots:   d.DegradedSlots,
			Admitted:        d.Admitted,
			Rejected:        d.Rejected,
			Shed:            d.Shed,
			Drained:         d.Drained,
			TickP50Ms:       gw.TickQuantileMs(0.50),
			TickP99Ms:       gw.TickQuantileMs(0.99),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		m := gw.SessionWindowMetrics()
		writeJSON(w, metricsView{
			Slot:        gw.Slot(),
			EndedWindow: m.EndedWindow,
			EndedTotal:  m.EndedTotal,
			RebufP50Sec: m.RebufP50Sec,
			RebufP99Sec: m.RebufP99Sec,
			EnergyP50MJ: m.EnergyP50MJ,
			EnergyP99MJ: m.EnergyP99MJ,
			TickP50Ms:   gw.TickQuantileMs(0.50),
			TickP99Ms:   gw.TickQuantileMs(0.99),
		})
	})
	return mux
}

// statView is the JSON shape of one user's stats.
type statView struct {
	ID            int     `json:"id"`
	SentKB        float64 `json:"sent_kb"`
	QueuedKB      float64 `json:"queued_kb"`
	BufferSec     float64 `json:"buffer_sec"`
	Done          bool    `json:"done"`
	Detached      bool    `json:"detached"`
	TransEnergyMJ float64 `json:"trans_energy_mj"`
	TailEnergyMJ  float64 `json:"tail_energy_mj"`
}

func toView(st Stats) statView {
	return statView{
		ID:            st.ID,
		SentKB:        float64(st.SentKB),
		QueuedKB:      float64(st.QueuedKB),
		BufferSec:     float64(st.BufferSec),
		Done:          st.Done,
		Detached:      st.Detached,
		TransEnergyMJ: float64(st.TransEnergy),
		TailEnergyMJ:  float64(st.TailEnergy),
	}
}

type summaryView struct {
	Slot      int     `json:"slot"`
	Users     int     `json:"users"`
	Detached  int     `json:"detached"`
	AllDone   bool    `json:"all_done"`
	SentKB    float64 `json:"sent_kb"`
	EnergyMJ  float64 `json:"energy_mj"`
	BypassKB  float64 `json:"bypass_kb"`
	Scheduler string  `json:"scheduler"`
}

// diagView is the JSON shape of the /diag endpoint.
type diagView struct {
	Slot            int     `json:"slot"`
	Draining        bool    `json:"draining"`
	TransientErrors int     `json:"transient_errors"`
	FatalErrors     int     `json:"fatal_errors"`
	MissedDeadlines int     `json:"missed_deadlines"`
	StaleSlots      int     `json:"stale_slots"`
	Reattaches      int     `json:"reattaches"`
	BreakerOpens    int     `json:"breaker_opens"`
	StaleDetaches   int     `json:"stale_detaches"`
	DegradedSlots   int     `json:"degraded_slots"`
	Admitted        int     `json:"admitted"`
	Rejected        int     `json:"rejected"`
	Shed            int     `json:"shed"`
	Drained         int     `json:"drained"`
	TickP50Ms       float64 `json:"tick_p50_ms"`
	TickP99Ms       float64 `json:"tick_p99_ms"`
}

// metricsView is the JSON shape of the /metrics endpoint.
type metricsView struct {
	Slot        int     `json:"slot"`
	EndedWindow int     `json:"sessions_ended_window"`
	EndedTotal  int     `json:"sessions_ended_total"`
	RebufP50Sec float64 `json:"rebuffer_p50_sec"`
	RebufP99Sec float64 `json:"rebuffer_p99_sec"`
	EnergyP50MJ float64 `json:"energy_p50_mj"`
	EnergyP99MJ float64 `json:"energy_p99_mj"`
	TickP50Ms   float64 `json:"tick_p50_ms"`
	TickP99Ms   float64 `json:"tick_p99_ms"`
}

func allStats(gw *Gateway) []statView {
	var out []statView
	for id := 0; ; id++ {
		st, err := gw.StatsFor(id)
		if err != nil {
			break
		}
		out = append(out, toView(st))
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
