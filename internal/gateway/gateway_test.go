package gateway

import (
	"errors"
	"io"
	"testing"

	"jointstream/internal/radio"
	"jointstream/internal/rrc"
	"jointstream/internal/sched"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

func testConfig() Config {
	return Config{
		Tau:      1,
		Unit:     100,
		Capacity: 5000,
		Radio:    radio.Paper3G(),
		QueueCap: 10000,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Tau = 0 },
		func(c *Config) { c.Unit = 0 },
		func(c *Config) { c.Capacity = 0 },
		func(c *Config) { c.Radio = radio.Model{} },
		func(c *Config) { c.QueueCap = 0 },
	}
	for i, m := range muts {
		c := testConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testConfig(), nil); err == nil {
		t.Error("nil scheduler accepted")
	}
	if _, err := New(Config{}, sched.NewDefault()); err == nil {
		t.Error("invalid config accepted")
	}
}

func attachUser(t *testing.T, g *Gateway, sizeKB units.KB, rate units.KBps, sig units.DBm) (*LocalEndpoint, int) {
	t.Helper()
	ep, err := NewLocalEndpoint(signal.Constant(sig, signal.DefaultBounds), rate, true)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPatternSource(sizeKB)
	if err != nil {
		t.Fatal(err)
	}
	id, err := g.Attach(ep, src)
	if err != nil {
		t.Fatal(err)
	}
	return ep, id
}

func TestAttachValidation(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	if _, err := g.Attach(nil, &PatternSource{}); err == nil {
		t.Error("nil endpoint accepted")
	}
	ep, _ := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, false)
	if _, err := g.Attach(ep, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	g, err := New(testConfig(), sched.NewDefault())
	if err != nil {
		t.Fatal(err)
	}
	ep, id := attachUser(t, g, 2000, 400, -60)
	for i := 0; i < 50 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		ep.Advance()
	}
	if !g.AllDone() {
		t.Fatal("delivery did not finish in 50 slots")
	}
	if got := ep.ReceivedBytes(); got != 2_000_000 {
		t.Errorf("received %d bytes, want 2000000", got)
	}
	if err := Verify(ep.Payload()); err != nil {
		t.Errorf("payload integrity: %v", err)
	}
	st, err := g.StatsFor(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.SentKB != 2000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCapacitySharedAcrossUsers(t *testing.T) {
	cfg := testConfig()
	cfg.Capacity = 1000 // 10 units/slot
	g, _ := New(cfg, sched.NewDefault())
	epA, _ := attachUser(t, g, 5000, 400, -60)
	epB, _ := attachUser(t, g, 5000, 400, -60)
	alloc, err := g.Step()
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0]+alloc[1] > 10 {
		t.Errorf("allocated %v units, capacity 10", alloc)
	}
	_ = epA
	_ = epB
}

func TestRTMAInGateway(t *testing.T) {
	rt, err := sched.NewRTMA(sched.RTMAConfig{
		Budget: 2000, Radio: radio.Paper3G(), RRC: rrc.Paper3G(),
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(testConfig(), rt)
	if err != nil {
		t.Fatal(err)
	}
	ep, _ := attachUser(t, g, 1000, 400, -60)
	for i := 0; i < 30 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
		ep.Advance()
	}
	if ep.ReceivedBytes() == 0 {
		t.Error("RTMA gateway delivered nothing")
	}
}

func TestDisconnectedUserDetaches(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	ep, id := attachUser(t, g, 100000, 400, -60)
	g.Step()
	ep.Disconnect()
	g.Step()
	st, _ := g.StatsFor(id)
	if !st.Detached {
		t.Error("user not detached after disconnect")
	}
	// Further steps must not panic or allocate to the detached user.
	alloc, err := g.Step()
	if err != nil {
		t.Fatal(err)
	}
	if alloc[id] != 0 {
		t.Errorf("detached user allocated %d", alloc[id])
	}
}

type failingEndpoint struct{ LocalEndpoint }

func (f *failingEndpoint) Report() (Report, bool) { return Report{Sig: -60, Rate: 400}, true }
func (f *failingEndpoint) Deliver([]byte) error   { return errors.New("link down") }

// An endpoint that keeps failing with an unclassified (transient) error
// is no longer detached on the first slot: the backoff/breaker policy
// retries until Policy.BreakerTrips consecutive failures open the
// breaker.
func TestPersistentDeliveryErrorTripsBreaker(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	src, _ := NewPatternSource(1000)
	id, err := g.Attach(&failingEndpoint{}, src)
	if err != nil {
		t.Fatal(err)
	}
	g.Step()
	st, _ := g.StatsFor(id)
	if st.Detached {
		t.Fatal("transient delivery failure detached user on first error")
	}
	// Retries are spaced by exponential backoff; step far enough to
	// accumulate BreakerTrips consecutive failures.
	for i := 0; i < 64 && !st.Detached; i++ {
		g.Step()
		st, _ = g.StatsFor(id)
	}
	if !st.Detached {
		t.Fatal("persistently failing endpoint never detached")
	}
	if st.DetachReason != DetachBreaker {
		t.Errorf("detach reason = %q, want %q", st.DetachReason, DetachBreaker)
	}
	if st.TransientErrors < DefaultBreakerTrips {
		t.Errorf("transient errors = %d, want >= %d", st.TransientErrors, DefaultBreakerTrips)
	}
}

// A fatal (classified) delivery error still detaches immediately.
func TestFatalDeliveryErrorDetachesImmediately(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	ep, id := attachUser(t, g, 1000, 400, -60)
	// Disconnect between report collection and delivery: the endpoint
	// still reports, but Deliver returns a Fatal-classified error.
	g.Step()
	ep.Disconnect()
	st, _ := g.StatsFor(id)
	if st.Detached {
		t.Fatal("user detached before any failure")
	}
	// Next step: Report now returns ok=false too, but the first failure
	// path hit is what matters — run until detached and check the reason
	// is fatal or stale, never breaker.
	for i := 0; i < DefaultStaleGraceSlots+2 && !st.Detached; i++ {
		g.Step()
		st, _ = g.StatsFor(id)
	}
	if !st.Detached {
		t.Fatal("disconnected user never detached")
	}
	if st.DetachReason == DetachBreaker {
		t.Errorf("fatal-path detach attributed to breaker")
	}
}

// Satellite regression: a single transient delivery failure must not
// detach the user; the grant is retried after backoff and the session
// completes end to end with no data loss.
func TestOnceFailingEndpointRecovers(t *testing.T) {
	inner, err := NewLocalEndpoint(signal.Constant(-60, signal.DefaultBounds), 400, true)
	if err != nil {
		t.Fatal(err)
	}
	ep := &onceFailingEndpoint{LocalEndpoint: inner}
	g, _ := New(testConfig(), sched.NewDefault())
	src, _ := NewPatternSource(2000)
	id, err := g.Attach(ep, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80 && !g.AllDone(); i++ {
		if _, err := g.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := g.StatsFor(id)
	if st.Detached {
		t.Fatalf("once-failing endpoint was detached (reason %q)", st.DetachReason)
	}
	if !g.AllDone() {
		t.Fatal("delivery did not finish")
	}
	if st.TransientErrors != 1 {
		t.Errorf("transient errors = %d, want 1", st.TransientErrors)
	}
	if got := inner.ReceivedBytes(); got != 2_000_000 {
		t.Errorf("received %d bytes, want 2000000", got)
	}
	if err := Verify(inner.Payload()); err != nil {
		t.Error(err)
	}
	if d := g.Diagnostics(); d.Reattaches != 1 {
		t.Errorf("diagnostics reattaches = %d, want 1", d.Reattaches)
	}
}

// onceFailingEndpoint fails exactly its first Deliver with a transient
// error, then delegates to the wrapped LocalEndpoint.
type onceFailingEndpoint struct {
	*LocalEndpoint
	failed bool
}

func (e *onceFailingEndpoint) Deliver(p []byte) error {
	if !e.failed {
		e.failed = true
		return Transient(errors.New("injected transient failure"))
	}
	return e.LocalEndpoint.Deliver(p)
}

func TestForwardBypass(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	var got []byte
	class, err := g.Forward(Other, []byte{1, 2, 3}, func(p []byte) error {
		got = append(got, p...)
		return nil
	})
	if err != nil || class != Other {
		t.Fatalf("Forward(Other) = %v, %v", class, err)
	}
	if len(got) != 3 {
		t.Errorf("bypass delivered %d bytes", len(got))
	}
	if g.BypassedKB() != 0.003 {
		t.Errorf("BypassedKB = %v", g.BypassedKB())
	}
	// Video packets must be refused on the bypass path.
	if _, err := g.Forward(Video, []byte{1}, func([]byte) error { return nil }); err == nil {
		t.Error("video accepted on bypass path")
	}
	// Bypass delivery errors surface.
	if _, err := g.Forward(Other, []byte{1}, func([]byte) error { return errors.New("x") }); err == nil {
		t.Error("bypass error swallowed")
	}
}

func TestStatsForUnknownUser(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	if _, err := g.StatsFor(0); err == nil {
		t.Error("unknown user accepted")
	}
}

func TestAllDoneEmptyGateway(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	if g.AllDone() {
		t.Error("empty gateway reports done")
	}
}

func TestSlotCounter(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	attachUser(t, g, 100, 400, -60)
	for i := 0; i < 5; i++ {
		g.Step()
	}
	if g.Slot() != 5 {
		t.Errorf("Slot = %d, want 5", g.Slot())
	}
}

func TestBufferEstimateTracksDeliveries(t *testing.T) {
	g, _ := New(testConfig(), sched.NewDefault())
	_, id := attachUser(t, g, 400, 400, -60)
	g.Step() // delivers up to capacity: 400KB at 400KB/s = 1s of playback
	st, _ := g.StatsFor(id)
	if st.BufferSec <= 0 {
		t.Errorf("buffer estimate %v after delivery", st.BufferSec)
	}
}

func TestLocalEndpointValidation(t *testing.T) {
	if _, err := NewLocalEndpoint(nil, 400, false); err == nil {
		t.Error("nil trace accepted")
	}
	tr := signal.Constant(-60, signal.DefaultBounds)
	if _, err := NewLocalEndpoint(tr, 0, false); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestPatternSource(t *testing.T) {
	if _, err := NewPatternSource(0); err == nil {
		t.Error("zero size accepted")
	}
	src, err := NewPatternSource(1) // 1000 bytes
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 600)
	n, err := src.Read(buf)
	if n != 600 || err != nil {
		t.Fatalf("first read = %d, %v", n, err)
	}
	n, err = src.Read(buf)
	if n != 400 || err != io.EOF {
		t.Fatalf("second read = %d, %v (want 400, EOF)", n, err)
	}
	n, err = src.Read(buf)
	if n != 0 || err != io.EOF {
		t.Fatalf("post-EOF read = %d, %v", n, err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	good := []byte{0, 1, 2, 3}
	if err := Verify(good); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
	bad := []byte{0, 1, 9}
	if err := Verify(bad); err == nil {
		t.Error("corrupt payload accepted")
	}
}
