// Arrival and departure processes: the open-system extension of the
// paper's closed N-user batch. Config.MeanInterarrival's exponential
// staggering — previously a one-shot offset loop inside Generate — is
// now the Poisson member of a reusable ArrivalProcess family
// (Poisson/trace/burst) shared by batch generation, the open-system
// engine drivers (cell.OpenSim, deploy.RunOpenFleet) and the load
// generator. The default path stays byte-identical: PoissonArrivals
// draws the exact same src.Exp at the exact same sequence point Generate
// always did.
package workload

import (
	"fmt"
	"math"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

// ArrivalProcess produces the slot gap between consecutive user
// arrivals. NextGap(i, src) is the gap between arrival i-1 and arrival
// i (called only for i >= 1), drawing any randomness it needs from src;
// deterministic processes must not touch src so traces replay exactly.
// Returned gaps are clamped to be non-negative by every caller.
type ArrivalProcess interface {
	NextGap(i int, src *rng.Source) int
}

// PoissonArrivals is the paper-extension staggering Generate has always
// had: exponential interarrival times with the given mean, rounded up to
// whole slots. It reproduces the historical Config.MeanInterarrival
// behavior bit-for-bit (same Exp draw, same ceil).
type PoissonArrivals struct {
	// MeanInterarrival is the mean gap in slots (as a duration in slot
	// units, matching Config.MeanInterarrival).
	MeanInterarrival units.Seconds
}

// NextGap draws ceil(Exp(1/mean)) slots.
func (p PoissonArrivals) NextGap(i int, src *rng.Source) int {
	if p.MeanInterarrival <= 0 {
		return 0
	}
	return int(math.Ceil(src.Exp(1 / float64(p.MeanInterarrival))))
}

// TraceArrivals replays recorded absolute start slots: user i starts at
// StartSlots[i]. Users beyond the trace arrive with the trace's final
// gap repeated (a flat tail keeps arbitrary-N workloads valid against a
// finite trace). It draws no randomness.
type TraceArrivals struct {
	StartSlots []int
}

// NextGap returns StartSlots[i] − StartSlots[i−1] (never negative), or
// the final recorded gap for users past the end of the trace.
func (t TraceArrivals) NextGap(i int, _ *rng.Source) int {
	n := len(t.StartSlots)
	if n < 2 {
		return 0
	}
	if i >= n {
		i = n - 1
	}
	g := t.StartSlots[i] - t.StartSlots[i-1]
	if g < 0 {
		g = 0
	}
	return g
}

// BurstArrivals models flash-crowd admission: users arrive in bursts of
// Size simultaneous joins, with GapSlots slots between consecutive
// bursts. It draws no randomness.
type BurstArrivals struct {
	// Size is the number of users per burst (>= 1).
	Size int
	// GapSlots is the gap between bursts.
	GapSlots int
}

// NextGap returns GapSlots at each burst boundary and 0 within a burst.
func (b BurstArrivals) NextGap(i int, _ *rng.Source) int {
	size := b.Size
	if size < 1 {
		size = 1
	}
	if i%size == 0 {
		return b.GapSlots
	}
	return 0
}

// ArrivalSlots expands an arrival process into the first n absolute
// start slots, beginning at firstSlot. It consumes draws from src in the
// same order Generate would, so a driver can precompute a schedule that
// matches a generated workload.
func ArrivalSlots(p ArrivalProcess, n, firstSlot int, src *rng.Source) []int {
	slots := make([]int, n)
	start := firstSlot
	for i := 0; i < n; i++ {
		if p != nil && i > 0 {
			if g := p.NextGap(i, src); g > 0 {
				start += g
			}
		}
		slots[i] = start
	}
	return slots
}

// DepartureProcess draws how long an admitted user stays before leaving
// on its own (channel change, app close) rather than finishing the
// video. StaySlots(user, src) returns the stay length in slots; a
// non-positive return means the user never abandons and streams to
// completion.
type DepartureProcess interface {
	StaySlots(user int, src *rng.Source) int
}

// ExpDepartures is exponential abandonment: each user stays
// ceil(Exp(1/mean)) slots. A zero mean disables abandonment.
type ExpDepartures struct {
	MeanStaySlots float64
}

// StaySlots draws the exponential stay.
func (d ExpDepartures) StaySlots(_ int, src *rng.Source) int {
	if d.MeanStaySlots <= 0 {
		return 0
	}
	return int(math.Ceil(src.Exp(1 / d.MeanStaySlots)))
}

// ChurnGen draws sessions one at a time for open-system serving, where
// the user population is unbounded and sessions are created at admission
// rather than generated as a batch. Each Next draws size, rate and a
// channel trace with the same distributions Generate uses; the phase is
// drawn uniformly per user (a batch can spread phases evenly over a
// known N — an open system cannot).
type ChurnGen struct {
	cfg Config
	src *rng.Source
}

// NewChurnGen validates the distribution parameters of c (Users is
// ignored — the population is open) and returns a generator drawing from
// src. Open-system engines with unbounded horizons need bounded per-user
// memory, so StatelessSignal is forced on.
func NewChurnGen(c Config, src *rng.Source) (*ChurnGen, error) {
	probe := c
	probe.Users = 1
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	c.StatelessSignal = true
	return &ChurnGen{cfg: c, src: src}, nil
}

// Next draws the next arriving session with the given user ID and start
// slot.
func (g *ChurnGen) Next(id, startSlot int) (*Session, error) {
	c := &g.cfg
	size := units.KB(g.src.Uniform(float64(c.SizeMin), float64(c.SizeMax)))
	rate := units.KBps(g.src.Uniform(float64(c.RateMin), float64(c.RateMax)))
	sigCfg := c.Signal
	sigCfg.Phase = g.src.Uniform(0, 2*math.Pi)
	tr, err := signalTrace(c, sigCfg, g.src)
	if err != nil {
		return nil, fmt.Errorf("workload: churn user %d signal: %w", id, err)
	}
	s := &Session{
		ID:         id,
		Size:       size,
		BaseRate:   rate,
		RateJitter: units.KBps(c.RateJitterFrac * float64(rate)),
		StartSlot:  startSlot,
		Signal:     tr,
	}
	if s.RateJitter > 0 {
		s.rates = &rateSeq{src: g.src.Split()}
	}
	return s, nil
}
