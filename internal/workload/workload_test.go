package workload

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

func TestPaperDefaults(t *testing.T) {
	c := PaperDefaults(40)
	if c.Users != 40 {
		t.Errorf("Users = %d", c.Users)
	}
	if c.SizeMin != 250000 || c.SizeMax != 500000 {
		t.Errorf("size range = [%v,%v], want [250MB,500MB]", c.SizeMin, c.SizeMax)
	}
	if c.RateMin != 300 || c.RateMax != 600 {
		t.Errorf("rate range = [%v,%v], want [300,600]", c.RateMin, c.RateMax)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
}

func TestGenerateRanges(t *testing.T) {
	sessions, err := Generate(PaperDefaults(40), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 40 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	for _, s := range sessions {
		if s.Size < 250000 || s.Size >= 500000 {
			t.Errorf("user %d size %v out of range", s.ID, s.Size)
		}
		if s.BaseRate < 300 || s.BaseRate >= 600 {
			t.Errorf("user %d rate %v out of range", s.ID, s.BaseRate)
		}
		if s.StartSlot != 0 {
			t.Errorf("user %d starts at %d, want 0", s.ID, s.StartSlot)
		}
		if s.Signal == nil {
			t.Errorf("user %d missing signal trace", s.ID)
		}
	}
}

func TestGenerateIDsSequential(t *testing.T) {
	sessions, _ := Generate(PaperDefaults(10), rng.New(2))
	for i, s := range sessions {
		if s.ID != i {
			t.Errorf("session %d has ID %d", i, s.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(PaperDefaults(10), rng.New(42))
	b, _ := Generate(PaperDefaults(10), rng.New(42))
	for i := range a {
		if a[i].Size != b[i].Size || a[i].BaseRate != b[i].BaseRate {
			t.Fatalf("same-seed workloads differ at user %d", i)
		}
		for n := 0; n < 50; n++ {
			if a[i].Signal.At(n) != b[i].Signal.At(n) {
				t.Fatalf("same-seed signal traces differ at user %d slot %d", i, n)
			}
		}
	}
}

func TestGenerateUsersDiffer(t *testing.T) {
	sessions, _ := Generate(PaperDefaults(10), rng.New(42))
	// Phase shifts must decorrelate users' signals.
	diff := 0
	for n := 0; n < 20; n++ {
		if sessions[0].Signal.At(n) != sessions[5].Signal.At(n) {
			diff++
		}
	}
	if diff < 15 {
		t.Errorf("users 0 and 5 signals nearly identical (%d/20 differ)", diff)
	}
}

func TestDuration(t *testing.T) {
	s := &Session{Size: 350000, BaseRate: 500}
	if got := s.Duration(); got != 700 {
		t.Errorf("Duration = %v, want 700", got)
	}
}

func TestConstantRateSession(t *testing.T) {
	s := &Session{BaseRate: 450}
	for n := 0; n < 10; n++ {
		if s.RateAt(n) != 450 {
			t.Errorf("RateAt(%d) = %v, want 450", n, s.RateAt(n))
		}
	}
}

func TestVBRSessions(t *testing.T) {
	cfg := PaperDefaults(5)
	cfg.RateJitterFrac = 0.2
	sessions, err := Generate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	s := sessions[0]
	varies := false
	for n := 0; n < 50; n++ {
		r := s.RateAt(n)
		lo := float64(s.BaseRate) * 0.8
		hi := float64(s.BaseRate) * 1.2
		if float64(r) < lo-1e-9 || float64(r) > hi+1e-9 {
			t.Errorf("RateAt(%d) = %v outside [%v,%v]", n, r, lo, hi)
		}
		if r != s.BaseRate {
			varies = true
		}
		// Repeatable.
		if s.RateAt(n) != r {
			t.Errorf("RateAt(%d) not repeatable", n)
		}
	}
	if !varies {
		t.Error("VBR session never varied")
	}
}

func TestStaggeredArrivals(t *testing.T) {
	cfg := PaperDefaults(20)
	cfg.MeanInterarrival = 5
	sessions, err := Generate(cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if sessions[0].StartSlot != 0 {
		t.Errorf("first user starts at %d, want 0", sessions[0].StartSlot)
	}
	prev := -1
	increased := false
	for _, s := range sessions {
		if s.StartSlot < prev {
			t.Errorf("start slots not non-decreasing: %d after %d", s.StartSlot, prev)
		}
		if s.StartSlot > 0 {
			increased = true
		}
		prev = s.StartSlot
	}
	if !increased {
		t.Error("no staggering with positive interarrival")
	}
}

func TestWithAvgSize(t *testing.T) {
	c := PaperDefaults(10).WithAvgSize(300 * units.Megabyte)
	mid := (float64(c.SizeMin) + float64(c.SizeMax)) / 2
	if math.Abs(mid-300000) > 1e-6 {
		t.Errorf("midpoint = %v, want 300000", mid)
	}
	if c.SizeMin >= c.SizeMax {
		t.Error("degenerate range")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("WithAvgSize invalid: %v", err)
	}
}

func TestValidate(t *testing.T) {
	base := PaperDefaults(10)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero users", func(c *Config) { c.Users = 0 }},
		{"zero size", func(c *Config) { c.SizeMin = 0 }},
		{"inverted size", func(c *Config) { c.SizeMax = c.SizeMin - 1 }},
		{"zero rate", func(c *Config) { c.RateMin = 0 }},
		{"inverted rate", func(c *Config) { c.RateMax = c.RateMin - 1 }},
		{"bad jitter", func(c *Config) { c.RateJitterFrac = 1.5 }},
		{"negative jitter", func(c *Config) { c.RateJitterFrac = -0.1 }},
		{"negative interarrival", func(c *Config) { c.MeanInterarrival = -1 }},
	}
	for _, c := range cases {
		cfg := base
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
		if _, err := Generate(cfg, rng.New(1)); err == nil {
			t.Errorf("%s: Generate accepted", c.name)
		}
	}
}

func TestTotalDemand(t *testing.T) {
	sessions := []*Session{
		{BaseRate: 300}, {BaseRate: 450}, {BaseRate: 600},
	}
	if got := TotalDemand(sessions); got != 1350 {
		t.Errorf("TotalDemand = %v, want 1350", got)
	}
	if got := TotalDemand(nil); got != 0 {
		t.Errorf("TotalDemand(nil) = %v, want 0", got)
	}
}

func TestGenerateMeanStatistics(t *testing.T) {
	// Averages over many users should approach range midpoints.
	cfg := PaperDefaults(2000)
	sessions, err := Generate(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var sizeSum, rateSum float64
	for _, s := range sessions {
		sizeSum += float64(s.Size)
		rateSum += float64(s.BaseRate)
	}
	meanSize := sizeSum / float64(len(sessions))
	meanRate := rateSum / float64(len(sessions))
	if math.Abs(meanSize-375000) > 5000 {
		t.Errorf("mean size = %v, want ~375000", meanSize)
	}
	if math.Abs(meanRate-450) > 5 {
		t.Errorf("mean rate = %v, want ~450", meanRate)
	}
}

// Property: generation always respects configured ranges.
func TestGenerateRangesProperty(t *testing.T) {
	f := func(seed uint64, usersRaw uint8) bool {
		users := int(usersRaw%50) + 1
		cfg := PaperDefaults(users)
		sessions, err := Generate(cfg, rng.New(seed))
		if err != nil || len(sessions) != users {
			return false
		}
		for _, s := range sessions {
			if s.Size < cfg.SizeMin || s.Size >= cfg.SizeMax {
				return false
			}
			if s.BaseRate < cfg.RateMin || s.BaseRate >= cfg.RateMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
