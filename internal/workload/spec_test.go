package workload

import (
	"bytes"
	"strings"
	"testing"
)

const validSpec = `{
  "users": [
    {"size_mb": 350, "rate_kbps": 450, "signal": {"kind": "constant", "level_dbm": -70}},
    {"size_mb": 120, "rate_kbps": 300, "start_slot": 5,
     "signal": {"kind": "sine", "period_slots": 100, "noise_db": 10, "seed": 7}},
    {"size_mb": 80, "rate_kbps": 600,
     "signal": {"kind": "trace", "values_dbm": [-60, -70, -80]}},
    {"size_mb": 50, "rate_kbps": 400,
     "signal": {"kind": "walk", "level_dbm": -75, "step_db": 4, "seed": 3}}
  ]
}`

func TestReadSpecAndSessions(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	sessions, err := spec.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(sessions) != 4 {
		t.Fatalf("got %d sessions", len(sessions))
	}
	if sessions[0].Size != 350000 || sessions[0].BaseRate != 450 {
		t.Errorf("session 0 = %+v", sessions[0])
	}
	if sessions[1].StartSlot != 5 {
		t.Errorf("start slot = %d", sessions[1].StartSlot)
	}
	// Constant channel.
	if got := sessions[0].Signal.At(100); got != -70 {
		t.Errorf("constant signal = %v", got)
	}
	// Replayed trace holds its last value.
	if got := sessions[2].Signal.At(10); got != -80 {
		t.Errorf("trace signal = %v", got)
	}
	// IDs are dense.
	for i, s := range sessions {
		if s.ID != i {
			t.Errorf("session %d has ID %d", i, s.ID)
		}
	}
}

func TestSpecDeterministic(t *testing.T) {
	mk := func() *Session {
		spec, err := ReadSpec(strings.NewReader(validSpec))
		if err != nil {
			t.Fatal(err)
		}
		ss, err := spec.Sessions()
		if err != nil {
			t.Fatal(err)
		}
		return ss[1] // the seeded sine user
	}
	a, b := mk(), mk()
	for n := 0; n < 50; n++ {
		if a.Signal.At(n) != b.Signal.At(n) {
			t.Fatal("seeded spec sessions not deterministic")
		}
	}
}

func TestReadSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"empty users", `{"users": []}`},
		{"unknown field", `{"users": [{"size_mb": 1, "rate_kbps": 1, "bogus": 2, "signal": {"kind": "constant"}}]}`},
		{"zero size", `{"users": [{"size_mb": 0, "rate_kbps": 400, "signal": {"kind": "constant"}}]}`},
		{"zero rate", `{"users": [{"size_mb": 10, "rate_kbps": 0, "signal": {"kind": "constant"}}]}`},
		{"negative start", `{"users": [{"size_mb": 10, "rate_kbps": 400, "start_slot": -1, "signal": {"kind": "constant"}}]}`},
		{"bad kind", `{"users": [{"size_mb": 10, "rate_kbps": 400, "signal": {"kind": "laser"}}]}`},
		{"empty trace", `{"users": [{"size_mb": 10, "rate_kbps": 400, "signal": {"kind": "trace"}}]}`},
	}
	for _, c := range cases {
		if _, err := ReadSpec(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWriteSpecRoundTrip(t *testing.T) {
	spec, err := ReadSpec(strings.NewReader(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(spec.Users) {
		t.Fatalf("round trip lost users: %d vs %d", len(back.Users), len(spec.Users))
	}
	for i := range spec.Users {
		if back.Users[i].SizeMB != spec.Users[i].SizeMB ||
			back.Users[i].Signal.Kind != spec.Users[i].Signal.Kind {
			t.Errorf("user %d differs after round trip", i)
		}
	}
	// Writing an invalid spec fails.
	if err := WriteSpec(&buf, &Spec{}); err == nil {
		t.Error("invalid spec written")
	}
}

func TestSpecSineDefaultsPeriod(t *testing.T) {
	in := `{"users": [{"size_mb": 10, "rate_kbps": 400, "signal": {"kind": "sine"}}]}`
	spec, err := ReadSpec(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sessions, err := spec.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	// Default 600-slot period, no noise: slot 150 is the sine peak (-50).
	if got := sessions[0].Signal.At(150); got != -50 {
		t.Errorf("default sine peak = %v, want -50", got)
	}
}
