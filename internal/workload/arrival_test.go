package workload

import (
	"math"
	"testing"

	"jointstream/internal/rng"
	"jointstream/internal/units"
)

// The ArrivalProcess refactor must keep MeanInterarrival workloads
// byte-identical: same draws, same order, same start slots. This test
// re-implements the pre-refactor inline staggering (size, rate, signal,
// then ceil(Exp(1/mean)) per user after the first) against a twin source
// and compares every field Generate produces.
func TestPoissonDefaultMatchesLegacyStaggering(t *testing.T) {
	c := PaperDefaults(40)
	c.MeanInterarrival = 8
	got, err := Generate(c, rng.New(1234))
	if err != nil {
		t.Fatal(err)
	}

	// Legacy twin: replay the historical draw sequence by hand.
	src := rng.New(1234)
	src.Uniform(0, 2*math.Pi) // phase offset
	start := 0
	for i := 0; i < c.Users; i++ {
		size := units.KB(src.Uniform(float64(c.SizeMin), float64(c.SizeMax)))
		rate := units.KBps(src.Uniform(float64(c.RateMin), float64(c.RateMax)))
		// signal trace consumes from the shared source; mirror via the
		// same constructor the generator uses.
		sigCfg := c.Signal
		sigCfg.Phase = 0 // phase value irrelevant to draw consumption
		if _, err := signalTrace(&c, sigCfg, src); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			start += int(math.Ceil(src.Exp(1 / float64(c.MeanInterarrival))))
		}
		s := got[i]
		if s.Size != size || s.BaseRate != rate || s.StartSlot != start {
			t.Fatalf("user %d: got (size=%v rate=%v start=%d), legacy (size=%v rate=%v start=%d)",
				i, s.Size, s.BaseRate, s.StartSlot, size, rate, start)
		}
	}
}

// Explicit PoissonArrivals must equal the MeanInterarrival shorthand.
func TestPoissonArrivalsEqualsShorthand(t *testing.T) {
	a := PaperDefaults(25)
	a.MeanInterarrival = 5
	b := PaperDefaults(25)
	b.Arrivals = PoissonArrivals{MeanInterarrival: 5}
	sa, err := Generate(a, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Generate(b, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i].StartSlot != sb[i].StartSlot || sa[i].Size != sb[i].Size || sa[i].BaseRate != sb[i].BaseRate {
			t.Fatalf("user %d: shorthand %+v != explicit %+v", i, sa[i], sb[i])
		}
	}
}

func TestTraceArrivals(t *testing.T) {
	tr := TraceArrivals{StartSlots: []int{0, 3, 3, 10}}
	c := PaperDefaults(6)
	c.Arrivals = tr
	ss, err := Generate(c, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Users 0-3 follow the trace; 4,5 repeat the final gap (7).
	want := []int{0, 3, 3, 10, 17, 24}
	for i, s := range ss {
		if s.StartSlot != want[i] {
			t.Fatalf("user %d start = %d, want %d", i, s.StartSlot, want[i])
		}
	}
	// Deterministic: consumes no randomness, so sizes match a no-arrival
	// generation with the same seed.
	c2 := PaperDefaults(6)
	ss2, err := Generate(c2, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if ss[i].Size != ss2[i].Size {
			t.Fatalf("trace arrivals consumed randomness: user %d size %v != %v", i, ss[i].Size, ss2[i].Size)
		}
	}
}

func TestBurstArrivals(t *testing.T) {
	c := PaperDefaults(7)
	c.Arrivals = BurstArrivals{Size: 3, GapSlots: 20}
	ss, err := Generate(c, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 20, 20, 20, 40}
	for i, s := range ss {
		if s.StartSlot != want[i] {
			t.Fatalf("user %d start = %d, want %d", i, s.StartSlot, want[i])
		}
	}
}

func TestArrivalSlots(t *testing.T) {
	got := ArrivalSlots(BurstArrivals{Size: 2, GapSlots: 5}, 5, 100, rng.New(1))
	want := []int{100, 100, 105, 105, 110}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %d, want %d", i, got[i], want[i])
		}
	}
	// nil process: everyone at firstSlot.
	flat := ArrivalSlots(nil, 3, 7, rng.New(1))
	for _, s := range flat {
		if s != 7 {
			t.Fatalf("nil process start = %d, want 7", s)
		}
	}
}

func TestArrivalsMutuallyExclusive(t *testing.T) {
	c := PaperDefaults(3)
	c.MeanInterarrival = 4
	c.Arrivals = BurstArrivals{Size: 2, GapSlots: 1}
	if _, err := Generate(c, rng.New(1)); err == nil {
		t.Fatal("want validation error when both Arrivals and MeanInterarrival are set")
	}
}

func TestExpDepartures(t *testing.T) {
	src := rng.New(42)
	d := ExpDepartures{MeanStaySlots: 30}
	var sum int
	const n = 2000
	for i := 0; i < n; i++ {
		s := d.StaySlots(i, src)
		if s < 1 {
			t.Fatalf("stay %d < 1", s)
		}
		sum += s
	}
	mean := float64(sum) / n
	if mean < 25 || mean > 36 {
		t.Fatalf("exp departure mean %v far from 30", mean)
	}
	if (ExpDepartures{}).StaySlots(0, src) != 0 {
		t.Fatal("zero-mean departures must return 0 (never abandon)")
	}
}

func TestChurnGen(t *testing.T) {
	c := PaperDefaults(1)
	g, err := NewChurnGen(c, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[units.KB]bool{}
	for i := 0; i < 50; i++ {
		s, err := g.Next(i, i*3)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != i || s.StartSlot != i*3 {
			t.Fatalf("session %d: id=%d start=%d", i, s.ID, s.StartSlot)
		}
		if s.Size < c.SizeMin || s.Size > c.SizeMax {
			t.Fatalf("size %v outside [%v, %v]", s.Size, c.SizeMin, c.SizeMax)
		}
		if s.BaseRate < c.RateMin || s.BaseRate > c.RateMax {
			t.Fatalf("rate %v outside [%v, %v]", s.BaseRate, c.RateMin, c.RateMax)
		}
		seen[s.Size] = true
		if s.Signal == nil {
			t.Fatal("nil signal trace")
		}
	}
	if len(seen) < 40 {
		t.Fatalf("sizes look degenerate: %d distinct of 50", len(seen))
	}
	// Determinism: same seed, same sequence.
	g2, _ := NewChurnGen(c, rng.New(9))
	s2, _ := g2.Next(0, 0)
	g3, _ := NewChurnGen(c, rng.New(9))
	s3, _ := g3.Next(0, 0)
	if s2.Size != s3.Size || s2.BaseRate != s3.BaseRate {
		t.Fatal("churn generation not deterministic per seed")
	}
}
