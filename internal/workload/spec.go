package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"jointstream/internal/rng"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

// Spec is a hand-written or exported workload description: explicit
// per-user sessions instead of the statistical generator, so measured
// traces and regression scenarios can be replayed exactly. The JSON shape:
//
//	{
//	  "users": [
//	    {"size_mb": 350, "rate_kbps": 450, "start_slot": 0,
//	     "signal": {"kind": "constant", "level_dbm": -70}},
//	    {"size_mb": 120, "rate_kbps": 300,
//	     "signal": {"kind": "sine", "period_slots": 600, "phase": 1.57,
//	                "noise_db": 30, "seed": 7}},
//	    {"size_mb": 80, "rate_kbps": 600,
//	     "signal": {"kind": "trace", "values_dbm": [-60, -70, -80]}}
//	  ]
//	}
type Spec struct {
	Users []UserSpec `json:"users"`
}

// UserSpec describes one session.
type UserSpec struct {
	SizeMB    float64    `json:"size_mb"`
	RateKBps  float64    `json:"rate_kbps"`
	StartSlot int        `json:"start_slot,omitempty"`
	Signal    SignalSpec `json:"signal"`
}

// SignalSpec selects and parameterizes the channel model.
type SignalSpec struct {
	// Kind is one of "constant", "sine", "walk", "trace".
	Kind string `json:"kind"`
	// LevelDBm parameterizes "constant" (and is the start of "walk").
	LevelDBm float64 `json:"level_dbm,omitempty"`
	// PeriodSlots, Phase and NoiseDB parameterize "sine".
	PeriodSlots int     `json:"period_slots,omitempty"`
	Phase       float64 `json:"phase,omitempty"`
	NoiseDB     float64 `json:"noise_db,omitempty"`
	// StepDB parameterizes "walk".
	StepDB float64 `json:"step_db,omitempty"`
	// Seed drives the stochastic kinds deterministically.
	Seed uint64 `json:"seed,omitempty"`
	// ValuesDBm parameterizes "trace" (replayed verbatim, last value
	// held).
	ValuesDBm []float64 `json:"values_dbm,omitempty"`
}

// ReadSpec parses a JSON workload spec.
func ReadSpec(r io.Reader) (*Spec, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("workload: decode spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if len(s.Users) == 0 {
		return fmt.Errorf("workload: spec has no users")
	}
	for i, u := range s.Users {
		if u.SizeMB <= 0 {
			return fmt.Errorf("workload: user %d: non-positive size %v MB", i, u.SizeMB)
		}
		if u.RateKBps <= 0 {
			return fmt.Errorf("workload: user %d: non-positive rate %v", i, u.RateKBps)
		}
		if u.StartSlot < 0 {
			return fmt.Errorf("workload: user %d: negative start slot %d", i, u.StartSlot)
		}
		switch u.Signal.Kind {
		case "constant", "sine", "walk", "trace":
		default:
			return fmt.Errorf("workload: user %d: unknown signal kind %q", i, u.Signal.Kind)
		}
		if u.Signal.Kind == "trace" && len(u.Signal.ValuesDBm) == 0 {
			return fmt.Errorf("workload: user %d: trace signal without values", i)
		}
	}
	return nil
}

// Sessions materializes the spec into simulator sessions.
func (s *Spec) Sessions() ([]*Session, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]*Session, len(s.Users))
	for i, u := range s.Users {
		tr, err := u.Signal.trace()
		if err != nil {
			return nil, fmt.Errorf("workload: user %d: %w", i, err)
		}
		out[i] = &Session{
			ID:        i,
			Size:      units.KB(u.SizeMB * 1000),
			BaseRate:  units.KBps(u.RateKBps),
			StartSlot: u.StartSlot,
			Signal:    tr,
		}
	}
	return out, nil
}

func (sp SignalSpec) trace() (signal.Trace, error) {
	switch sp.Kind {
	case "constant":
		return signal.Constant(units.DBm(sp.LevelDBm), signal.DefaultBounds), nil
	case "sine":
		period := sp.PeriodSlots
		if period == 0 {
			period = 600
		}
		return signal.NewSine(signal.SineConfig{
			Bounds:      signal.DefaultBounds,
			PeriodSlots: period,
			Phase:       sp.Phase,
			NoiseStdDBm: sp.NoiseDB,
		}, rngFor(sp.Seed))
	case "walk":
		step := sp.StepDB
		if step == 0 {
			step = 3
		}
		return signal.NewRandomWalk(signal.RandomWalkConfig{
			Bounds:  signal.DefaultBounds,
			Start:   units.DBm(sp.LevelDBm),
			StepStd: step,
		}, rngFor(sp.Seed))
	case "trace":
		vals := make([]units.DBm, len(sp.ValuesDBm))
		for i, v := range sp.ValuesDBm {
			vals[i] = units.DBm(v)
		}
		return signal.FromSlice(vals)
	default:
		return nil, fmt.Errorf("unknown signal kind %q", sp.Kind)
	}
}

// WriteSpec serializes a spec as indented JSON.
func WriteSpec(w io.Writer, s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// rngFor builds a deterministic source for a spec seed (0 means seed 1 so
// the zero value still reproduces).
func rngFor(seed uint64) *rng.Source {
	if seed == 0 {
		seed = 1
	}
	return rng.New(seed)
}
