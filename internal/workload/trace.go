package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"jointstream/internal/units"
)

// ParseArrivalTrace reads a CSV arrival log — one load epoch per line,
// `timestamp,rate,duration` (seconds, sessions per second, seconds) —
// and expands it into a TraceArrivals that replays the recorded load
// shape at slot granularity tau. Each epoch contributes
// floor(rate·duration) arrivals evenly spaced from its timestamp, so a
// row like `60,2,30` is sixty sessions arriving twice a second starting
// at the one-minute mark. Blank lines and lines starting with '#' are
// skipped, as is an optional non-numeric header row; epochs may appear
// out of order and overlap — arrivals are sorted by slot before the
// trace is returned.
func ParseArrivalTrace(r io.Reader, tau units.Seconds) (TraceArrivals, error) {
	if tau <= 0 {
		return TraceArrivals{}, fmt.Errorf("workload: non-positive slot length %v for arrival trace", tau)
	}
	var slots []int
	sc := bufio.NewScanner(r)
	line, parsed := 0, 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" || strings.HasPrefix(raw, "#") {
			continue
		}
		fields := strings.Split(raw, ",")
		if len(fields) != 3 {
			return TraceArrivals{}, fmt.Errorf("workload: arrival trace line %d: want timestamp,rate,duration, got %q", line, raw)
		}
		ts, errT := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		rate, errR := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		dur, errD := strconv.ParseFloat(strings.TrimSpace(fields[2]), 64)
		if errT != nil || errR != nil || errD != nil {
			// Tolerate one leading header row (`timestamp,rate,duration`).
			if parsed == 0 && errT != nil {
				continue
			}
			return TraceArrivals{}, fmt.Errorf("workload: arrival trace line %d: non-numeric field in %q", line, raw)
		}
		if ts < 0 || rate < 0 || dur < 0 {
			return TraceArrivals{}, fmt.Errorf("workload: arrival trace line %d: negative value in %q", line, raw)
		}
		parsed++
		// The epsilon keeps exact products like 2.0×30.0 from flooring
		// down on representation error.
		n := int(rate*dur + 1e-9)
		for k := 0; k < n; k++ {
			t := ts + float64(k)/rate
			slots = append(slots, int(t/float64(tau)))
		}
	}
	if err := sc.Err(); err != nil {
		return TraceArrivals{}, fmt.Errorf("workload: reading arrival trace: %w", err)
	}
	if len(slots) == 0 {
		return TraceArrivals{}, fmt.Errorf("workload: arrival trace yields no arrivals")
	}
	sort.Ints(slots)
	return TraceArrivals{StartSlots: slots}, nil
}
