package workload

import (
	"strings"
	"testing"

	"jointstream/internal/units"
)

func TestParseArrivalTrace(t *testing.T) {
	csv := `timestamp,rate,duration
# warm-up epoch: 4 arrivals over 2s starting at t=0
0,2,2
10,1,3
`
	tr, err := ParseArrivalTrace(strings.NewReader(csv), units.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: floor(2*2)=4 arrivals at t=0, 0.5, 1, 1.5 -> slots 0,0,1,1.
	// Epoch 2: floor(1*3)=3 arrivals at t=10, 11, 12 -> slots 10,11,12.
	want := []int{0, 0, 1, 1, 10, 11, 12}
	if len(tr.StartSlots) != len(want) {
		t.Fatalf("StartSlots = %v, want %v", tr.StartSlots, want)
	}
	for i, s := range want {
		if tr.StartSlots[i] != s {
			t.Fatalf("StartSlots = %v, want %v", tr.StartSlots, want)
		}
	}
}

func TestParseArrivalTraceOverlapSorted(t *testing.T) {
	// Out-of-order, overlapping epochs must interleave sorted.
	csv := "5,1,2\n0,1,10\n"
	tr, err := ParseArrivalTrace(strings.NewReader(csv), units.Seconds(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.StartSlots) != 12 {
		t.Fatalf("got %d arrivals, want 12: %v", len(tr.StartSlots), tr.StartSlots)
	}
	for i := 1; i < len(tr.StartSlots); i++ {
		if tr.StartSlots[i] < tr.StartSlots[i-1] {
			t.Fatalf("unsorted StartSlots: %v", tr.StartSlots)
		}
	}
}

func TestParseArrivalTraceFinerSlots(t *testing.T) {
	tr, err := ParseArrivalTrace(strings.NewReader("1,4,1\n"), units.Seconds(0.25))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{4, 5, 6, 7}
	for i, s := range want {
		if tr.StartSlots[i] != s {
			t.Fatalf("StartSlots = %v, want %v", tr.StartSlots, want)
		}
	}
}

func TestParseArrivalTraceAsProcess(t *testing.T) {
	// The parsed trace must replay through the ArrivalProcess interface:
	// gaps reconstruct the absolute slots.
	tr, err := ParseArrivalTrace(strings.NewReader("0,1,4\n"), units.Seconds(2))
	if err != nil {
		t.Fatal(err)
	}
	got := ArrivalSlots(tr, len(tr.StartSlots), tr.StartSlots[0], nil)
	for i := range got {
		if got[i] != tr.StartSlots[i] {
			t.Fatalf("replayed slots %v != trace %v", got, tr.StartSlots)
		}
	}
}

func TestParseArrivalTraceErrors(t *testing.T) {
	cases := map[string]string{
		"bad field count": "1,2\n",
		"non-numeric":     "0,1,2\n1,x,2\n",
		"negative":        "0,-1,2\n",
		"empty":           "# only comments\n",
		"zero arrivals":   "0,0.1,1\n",
	}
	for name, csv := range cases {
		if _, err := ParseArrivalTrace(strings.NewReader(csv), units.Seconds(1)); err == nil {
			t.Errorf("%s: no error for %q", name, csv)
		}
	}
	if _, err := ParseArrivalTrace(strings.NewReader("0,1,1\n"), 0); err == nil {
		t.Error("no error for zero tau")
	}
}
