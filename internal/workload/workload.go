// Package workload generates the multi-user video streaming demand the
// simulator schedules: per-user video sessions (size and required bit-rate)
// and per-user channel traces.
//
// The paper's evaluation (§VI) uses N users who all start at slot 0, video
// sizes uniform in [250, 500] MB, required data rates uniform in
// [300, 600] KB/s (optionally varying over time — "the video bit rate
// changes over time but remains same in a slot"), and per-user sine signal
// traces distinguished by phase shifts. This package reproduces that setup
// and adds staggered (Poisson) arrivals as an extension scenario.
package workload

import (
	"fmt"
	"math"

	"jointstream/internal/pool"
	"jointstream/internal/rng"
	"jointstream/internal/signal"
	"jointstream/internal/units"
)

// Session describes one user's streaming demand.
type Session struct {
	// ID is the user index within the workload.
	ID int
	// Size is the total video size.
	Size units.KB
	// BaseRate is the nominal required data rate p_i.
	BaseRate units.KBps
	// RateJitter is the amplitude of slot-to-slot variation of the
	// required rate (0 for constant bit-rate sessions).
	RateJitter units.KBps
	// StartSlot is the slot at which the user joins (0 in the paper).
	StartSlot int
	// Signal is the user's channel trace.
	Signal signal.Trace

	rates *rateSeq
}

// Duration returns the total playback time M_i implied by size and the
// nominal rate.
func (s *Session) Duration() units.Seconds {
	return units.Seconds(float64(s.Size) / float64(s.BaseRate))
}

// RateAt returns the required data rate p_i(n) for slot n. With zero
// jitter it is the constant BaseRate; otherwise the rate wanders within
// [BaseRate−Jitter, BaseRate+Jitter], constant within a slot, floored at
// 1 KB/s.
func (s *Session) RateAt(n int) units.KBps {
	if s.RateJitter == 0 || s.rates == nil {
		return s.BaseRate
	}
	return s.rates.at(n, s.BaseRate, s.RateJitter)
}

// Prewarm extends the session's lazily memoized stochastic sequences —
// the signal trace's noise stream and the VBR rate draws — to cover the
// first `slots` slots with one exactly-sized allocation each. The
// simulator calls it with its slot horizon so the per-slot loop never
// grows a memo incrementally; the values produced are identical with or
// without prewarming.
func (s *Session) Prewarm(slots int) {
	if p, ok := s.Signal.(signal.Prewarmer); ok {
		p.Prewarm(slots)
	}
	if s.rates != nil && slots > 0 {
		s.rates.grow(slots, s.BaseRate, s.RateJitter)
	}
}

// PrewarmAll prewarms every session to the slot horizon, fanning the
// sessions across at most `workers` goroutines. Each session owns its
// memos and rng streams (Generate gives VBR sessions split, independent
// sources), so the values produced are identical to a serial loop; the
// parallelism only matters at large N, where prewarming dominates
// simulator construction. workers <= 1 prewarm serially.
func PrewarmAll(workers int, sessions []*Session, slots int) {
	pool.Shard(workers, len(sessions), func(i int) {
		sessions[i].Prewarm(slots)
	})
}

// rateSeq memoizes per-slot rate draws so RateAt is repeatable.
type rateSeq struct {
	src  *rng.Source
	vals []units.KBps
}

// grow extends the memo to n values with one exactly-sized allocation.
func (r *rateSeq) grow(n int, base, jitter units.KBps) {
	if n <= len(r.vals) {
		return
	}
	if cap(r.vals) < n {
		vals := make([]units.KBps, len(r.vals), n)
		copy(vals, r.vals)
		r.vals = vals
	}
	r.at(n-1, base, jitter)
}

func (r *rateSeq) at(n int, base, jitter units.KBps) units.KBps {
	for len(r.vals) <= n {
		v := base + units.KBps(r.src.Uniform(-float64(jitter), float64(jitter)))
		if v < 1 {
			v = 1
		}
		r.vals = append(r.vals, v)
	}
	return r.vals[n]
}

// Config parameterizes workload generation.
type Config struct {
	// Users is the number of concurrent streaming sessions N.
	Users int
	// SizeMin and SizeMax bound the uniform video-size draw.
	SizeMin, SizeMax units.KB
	// RateMin and RateMax bound the uniform required-rate draw.
	RateMin, RateMax units.KBps
	// RateJitterFrac, if nonzero, makes sessions variable-bit-rate with
	// jitter amplitude RateJitterFrac×BaseRate.
	RateJitterFrac float64
	// Signal configures the per-user channel traces. Phase shifts are
	// spread evenly over [0, 2π) with a random per-user offset, following
	// the paper's "different phase shifts for the N sine functions".
	Signal signal.SineConfig
	// MeanInterarrival, if positive, staggers user start slots with
	// exponential interarrival times (extension; the paper starts all
	// users at slot 0). It is shorthand for Arrivals =
	// PoissonArrivals{MeanInterarrival} and produces bit-identical start
	// slots to what it always did.
	MeanInterarrival units.Seconds
	// Arrivals, if non-nil, staggers user start slots with an explicit
	// arrival process (Poisson/trace/burst — see ArrivalProcess). It is
	// mutually exclusive with MeanInterarrival.
	Arrivals ArrivalProcess
	// StatelessSignal builds the per-user traces with
	// signal.NewStatelessSine instead of the memoizing NewSine: each
	// trace is a pure function of (seed, slot) holding no per-slot memo,
	// so the workload's memory footprint is O(users) regardless of the
	// slot horizon. Fleet-scale deployments (internal/deploy streaming
	// runs) require this; the noise realization differs from the default
	// memoized stream, so paper-figure workloads keep the default.
	StatelessSignal bool
}

// PaperDefaults returns the §VI evaluation configuration for N users:
// sizes U(250,500) MB, rates U(300,600) KB/s, sine channel over
// [−110,−50] dBm with 30 dBm noise intensity.
func PaperDefaults(users int) Config {
	return Config{
		Users:   users,
		SizeMin: 250 * units.Megabyte,
		SizeMax: 500 * units.Megabyte,
		RateMin: 300,
		RateMax: 600,
		Signal: signal.SineConfig{
			Bounds:      signal.DefaultBounds,
			PeriodSlots: 600,
			NoiseStdDBm: 30, // the paper's 30 dBm white-noise intensity, read as sigma
		},
	}
}

// WithAvgSize returns a copy of c whose size range is centered on avg with
// the same relative half-width as the paper's default (±125/375 ≈ ±33%).
// The paper's Fig. 4b/8b sweeps "data amount" this way.
func (c Config) WithAvgSize(avg units.KB) Config {
	halfFrac := 1.0 / 3.0
	c.SizeMin = units.KB(float64(avg) * (1 - halfFrac))
	c.SizeMax = units.KB(float64(avg) * (1 + halfFrac))
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("workload: need at least one user, got %d", c.Users)
	}
	if c.SizeMin <= 0 || c.SizeMax < c.SizeMin {
		return fmt.Errorf("workload: invalid size range [%v, %v]", c.SizeMin, c.SizeMax)
	}
	if c.RateMin <= 0 || c.RateMax < c.RateMin {
		return fmt.Errorf("workload: invalid rate range [%v, %v]", c.RateMin, c.RateMax)
	}
	if c.RateJitterFrac < 0 || c.RateJitterFrac >= 1 {
		return fmt.Errorf("workload: rate jitter fraction %v outside [0,1)", c.RateJitterFrac)
	}
	if c.MeanInterarrival < 0 {
		return fmt.Errorf("workload: negative interarrival %v", c.MeanInterarrival)
	}
	if c.Arrivals != nil && c.MeanInterarrival > 0 {
		return fmt.Errorf("workload: Arrivals and MeanInterarrival are mutually exclusive")
	}
	return nil
}

// Generate draws the N sessions of the workload deterministically from src.
func Generate(c Config, src *rng.Source) ([]*Session, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	arrivals := c.Arrivals
	if arrivals == nil && c.MeanInterarrival > 0 {
		arrivals = PoissonArrivals{MeanInterarrival: c.MeanInterarrival}
	}
	sessions := make([]*Session, c.Users)
	phaseOffset := src.Uniform(0, 2*math.Pi)
	start := 0
	for i := range sessions {
		size := units.KB(src.Uniform(float64(c.SizeMin), float64(c.SizeMax)))
		rate := units.KBps(src.Uniform(float64(c.RateMin), float64(c.RateMax)))
		sigCfg := c.Signal
		sigCfg.Phase = phaseOffset + 2*math.Pi*float64(i)/float64(c.Users)
		tr, err := signalTrace(&c, sigCfg, src)
		if err != nil {
			return nil, fmt.Errorf("workload: user %d signal: %w", i, err)
		}
		// The arrival draw sits at the exact sequence point the historical
		// MeanInterarrival staggering used, so the Poisson default consumes
		// the same src draws in the same order — byte-identical workloads.
		if arrivals != nil && i > 0 {
			if g := arrivals.NextGap(i, src); g > 0 {
				start += g
			}
		}
		s := &Session{
			ID:         i,
			Size:       size,
			BaseRate:   rate,
			RateJitter: units.KBps(c.RateJitterFrac * float64(rate)),
			StartSlot:  start,
			Signal:     tr,
		}
		if s.RateJitter > 0 {
			s.rates = &rateSeq{src: src.Split()}
		}
		sessions[i] = s
	}
	return sessions, nil
}

// signalTrace builds one user's channel trace per the config's
// StatelessSignal switch, consuming exactly one src draw stream either
// way (a Uint64 seed for stateless traces, the shared source for
// memoized ones).
func signalTrace(c *Config, sigCfg signal.SineConfig, src *rng.Source) (signal.Trace, error) {
	if c.StatelessSignal {
		return signal.NewStatelessSine(sigCfg, src.Uint64())
	}
	return signal.NewSine(sigCfg, src)
}

// TotalDemand returns the sum of nominal rates across sessions, useful for
// judging base-station load against capacity S.
func TotalDemand(sessions []*Session) units.KBps {
	var sum units.KBps
	for _, s := range sessions {
		sum += s.BaseRate
	}
	return sum
}
