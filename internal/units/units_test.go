package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKBConversions(t *testing.T) {
	if got := (KB(1)).Bytes(); got != 1000 {
		t.Errorf("1KB.Bytes() = %v, want 1000", got)
	}
	if got := (Megabyte).Bytes(); got != 1e6 {
		t.Errorf("1MB.Bytes() = %v, want 1e6", got)
	}
	if got := (KB(2500)).MB(); got != 2.5 {
		t.Errorf("2500KB.MB() = %v, want 2.5", got)
	}
}

func TestOver(t *testing.T) {
	if got := KB(100).Over(50); got != 2 {
		t.Errorf("100KB over 50KB/s = %v, want 2s", got)
	}
	if got := KB(0).Over(0); got != 0 {
		t.Errorf("0KB over 0 = %v, want 0", got)
	}
}

func TestOverPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for positive size over zero rate")
		}
	}()
	_ = KB(1).Over(0)
}

func TestTimesEnergyRoundTrip(t *testing.T) {
	r := KBps(400)
	d := Seconds(3)
	if got := r.Times(d); got != 1200 {
		t.Errorf("400KB/s * 3s = %v, want 1200KB", got)
	}
	p := MW(700)
	if got := p.Energy(2); got != 1400 {
		t.Errorf("700mW * 2s = %v, want 1400mJ", got)
	}
	if got := MJ(5000).Joules(); got != 5 {
		t.Errorf("5000mJ = %vJ, want 5", got)
	}
}

func TestPerKB(t *testing.T) {
	if got := MJ(300).PerKB(100); got != 3 {
		t.Errorf("300mJ/100KB = %v, want 3", got)
	}
	if got := MJ(300).PerKB(0); got != 0 {
		t.Errorf("x/0KB = %v, want 0", got)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{KB(512).String(), "512KB"},
		{KB(1500).String(), "1.5MB"},
		{KB(2.5e6).String(), "2.5GB"},
		{KBps(450).String(), "450KB/s"},
		{KBps(2000).String(), "2MB/s"},
		{MJ(900).String(), "900mJ"},
		{MJ(2500).String(), "2.5J"},
		{MJ(3.2e6).String(), "3.2kJ"},
		{MW(732.83).String(), "732.83mW"},
		{MW(1500).String(), "1.5W"},
		{DBm(-75).String(), "-75dBm"},
		{Seconds(42).String(), "42s"},
		{Seconds(90).String(), "1.5min"},
		{Seconds(7200).String(), "2h"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestParseKB(t *testing.T) {
	cases := []struct {
		in   string
		want KB
	}{
		{"350MB", 350000},
		{"1.5GB", 1.5e6},
		{"200KB", 200},
		{"200", 200},
		{" 42 ", 42},
		{"500B", 0.5},
	}
	for _, c := range cases {
		got, err := ParseKB(c.in)
		if err != nil {
			t.Errorf("ParseKB(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("ParseKB(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
	for _, bad := range []string{"", "abc", "-3MB", "12QB3"} {
		if _, err := ParseKB(bad); err == nil {
			t.Errorf("ParseKB(%q) succeeded, want error", bad)
		}
	}
}

func TestParseKBps(t *testing.T) {
	got, err := ParseKBps("450KB/s")
	if err != nil || got != 450 {
		t.Errorf("ParseKBps(450KB/s) = %v, %v; want 450, nil", float64(got), err)
	}
	got, err = ParseKBps("2MBps")
	if err != nil || got != 2000 {
		t.Errorf("ParseKBps(2MBps) = %v, %v; want 2000, nil", float64(got), err)
	}
	if _, err := ParseKBps("fast"); err == nil {
		t.Error("ParseKBps(fast) succeeded, want error")
	}
}

// Property: Over and Times are inverses for positive quantities.
func TestOverTimesInverseProperty(t *testing.T) {
	f := func(size uint16, rate uint16) bool {
		k := KB(float64(size) + 1)
		r := KBps(float64(rate) + 1)
		d := k.Over(r)
		back := r.Times(d)
		return math.Abs(float64(back-k)) < 1e-6*float64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parsing the String output of a KB value round-trips.
func TestParseStringRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		k := KB(float64(raw % 100000)) // keep within 2-decimal precision of String
		parsed, err := ParseKB(k.String())
		if err != nil {
			return false
		}
		// String keeps 2 decimals of the scaled magnitude, so allow 1%% slack.
		return math.Abs(float64(parsed-k)) <= 0.01*math.Max(float64(k), 1)+0.01*float64(scale(k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func scale(k KB) KB {
	switch {
	case k >= Gigabyte:
		return Gigabyte
	case k >= Megabyte:
		return Megabyte
	default:
		return 1
	}
}
