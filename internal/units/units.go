// Package units defines the physical quantities used throughout the
// simulator: data sizes, data rates, energy, power, signal strength and
// time. The simulator core works in a small set of canonical units —
// kilobytes, kilobytes per second, millijoules, milliwatts, dBm and
// seconds — matching the units used by the paper's models (Eq. 3, 4, 24).
//
// The types are defined (not aliased) float64s so that mixing, say, a rate
// into an energy expression is a compile error at API boundaries, while
// still allowing cheap conversion inside numeric kernels.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// KB is a data size in kilobytes (1 KB = 1000 bytes in this codebase,
// matching the KB/s throughput fit of Eq. 24).
type KB float64

// KBps is a data rate in kilobytes per second.
type KBps float64

// MJ is energy in millijoules.
type MJ float64

// MW is power in milliwatts (1 mW sustained for 1 s = 1 mJ).
type MW float64

// DBm is a received signal strength indicator value in dBm. Typical
// cellular values are negative, e.g. −50 dBm (strong) to −110 dBm (weak).
type DBm float64

// Seconds is a duration in seconds. The simulator is slotted, with slot
// length τ expressed in Seconds.
type Seconds float64

// Common size multiples, expressed in KB.
const (
	Kilobyte KB = 1
	Megabyte KB = 1000
	Gigabyte KB = 1000 * 1000
)

// Bytes returns the size in bytes.
func (k KB) Bytes() float64 { return float64(k) * 1000 }

// MB returns the size in megabytes.
func (k KB) MB() float64 { return float64(k) / 1000 }

// Over returns the time needed to move k kilobytes at rate r.
// It returns +Inf-free results: a non-positive rate yields 0 duration for
// zero size and a very large duration otherwise is avoided by the caller;
// Over panics on r <= 0 with k > 0 because that indicates a modeling bug.
func (k KB) Over(r KBps) Seconds {
	if k == 0 {
		return 0
	}
	if r <= 0 {
		panic(fmt.Sprintf("units: %v KB over non-positive rate %v", float64(k), float64(r)))
	}
	return Seconds(float64(k) / float64(r))
}

// Times returns the amount of data moved at rate r for duration d.
func (r KBps) Times(d Seconds) KB { return KB(float64(r) * float64(d)) }

// Energy returns the energy consumed by drawing power p for duration d.
func (p MW) Energy(d Seconds) MJ { return MJ(float64(p) * float64(d)) }

// Joules returns the energy in joules.
func (e MJ) Joules() float64 { return float64(e) / 1000 }

// PerKB divides a total energy by a data amount, yielding mJ/KB, the unit
// of the paper's per-byte power model P(sig).
func (e MJ) PerKB(k KB) float64 {
	if k == 0 {
		return 0
	}
	return float64(e) / float64(k)
}

// String implementations render quantities with sensible precision and
// unit suffixes, so simulator output is self-describing.

func (k KB) String() string {
	switch {
	case k >= Gigabyte:
		return trimFloat(float64(k)/float64(Gigabyte)) + "GB"
	case k >= Megabyte:
		return trimFloat(float64(k)/float64(Megabyte)) + "MB"
	default:
		return trimFloat(float64(k)) + "KB"
	}
}

func (r KBps) String() string {
	if r >= KBps(Megabyte) {
		return trimFloat(float64(r)/1000) + "MB/s"
	}
	return trimFloat(float64(r)) + "KB/s"
}

func (e MJ) String() string {
	switch {
	case e >= 1e6:
		return trimFloat(float64(e)/1e6) + "kJ"
	case e >= 1e3:
		return trimFloat(float64(e)/1e3) + "J"
	default:
		return trimFloat(float64(e)) + "mJ"
	}
}

func (p MW) String() string {
	if p >= 1000 {
		return trimFloat(float64(p)/1000) + "W"
	}
	return trimFloat(float64(p)) + "mW"
}

func (s DBm) String() string { return trimFloat(float64(s)) + "dBm" }

func (d Seconds) String() string {
	switch {
	case d >= 3600:
		return trimFloat(float64(d)/3600) + "h"
	case d >= 60:
		return trimFloat(float64(d)/60) + "min"
	default:
		return trimFloat(float64(d)) + "s"
	}
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// ParseKB parses a size string such as "350MB", "1.5GB" or "200KB".
// A bare number is interpreted as kilobytes.
func ParseKB(s string) (KB, error) {
	s = strings.TrimSpace(s)
	mult := KB(1)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, s = Gigabyte, s[:len(s)-2]
	case strings.HasSuffix(upper, "MB"):
		mult, s = Megabyte, s[:len(s)-2]
	case strings.HasSuffix(upper, "KB"):
		mult, s = Kilobyte, s[:len(s)-2]
	case strings.HasSuffix(upper, "B"):
		mult, s = Kilobyte/1000, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse size %q: %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return KB(v) * mult, nil
}

// ParseKBps parses a rate string such as "450KB/s", "2MB/s" or a bare
// number of KB/s.
func ParseKBps(s string) (KBps, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(strings.TrimSuffix(s, "/s"), "ps")
	k, err := ParseKB(s)
	if err != nil {
		return 0, err
	}
	return KBps(k), nil
}
