package units

import (
	"math"
	"testing"
)

// FuzzParseKB checks the size parser never panics and, when it accepts an
// input, returns a non-negative finite value.
func FuzzParseKB(f *testing.F) {
	for _, seed := range []string{
		"350MB", "1.5GB", "200KB", "500B", "42", " 7 ", "", "abc",
		"-3MB", "1e9", "+;", "MB", "0x10", "9999999999999GB",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseKB(s)
		if err != nil {
			return
		}
		if v < 0 {
			t.Fatalf("ParseKB(%q) = %v < 0 without error", s, float64(v))
		}
		if math.IsNaN(float64(v)) {
			t.Fatalf("ParseKB(%q) = NaN without error", s)
		}
	})
}

// FuzzParseKBps mirrors FuzzParseKB for the rate parser.
func FuzzParseKBps(f *testing.F) {
	for _, seed := range []string{"450KB/s", "2MB/s", "300ps", "x/s", ""} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseKBps(s)
		if err != nil {
			return
		}
		if v < 0 || math.IsNaN(float64(v)) {
			t.Fatalf("ParseKBps(%q) = %v without error", s, float64(v))
		}
	})
}
