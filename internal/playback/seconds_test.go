package playback

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func TestNewSecondsValidation(t *testing.T) {
	if _, err := NewSeconds(0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewSeconds(-5); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestSecondsModeAccessors(t *testing.T) {
	b, err := NewSeconds(100)
	if err != nil {
		t.Fatal(err)
	}
	if !b.SecondsMode() {
		t.Error("SecondsMode false")
	}
	byteBuf, _ := New(1000, 10)
	if byteBuf.SecondsMode() {
		t.Error("byte-mode buffer reports seconds mode")
	}
	if b.DeliveredSeconds() != 0 || b.RemainingSeconds() != 100 {
		t.Errorf("fresh seconds buffer: delivered=%v remaining=%v",
			b.DeliveredSeconds(), b.RemainingSeconds())
	}
}

func TestSecondsModeDeliveryCompletion(t *testing.T) {
	b, _ := NewSeconds(10)
	// Deliver 4 s of content per slot at varying rates.
	b.Advance(400, 100, 1) // 4 s
	if b.DeliveryComplete() {
		t.Error("complete too early")
	}
	if got := b.DeliveredSeconds(); got != 4 {
		t.Errorf("DeliveredSeconds = %v, want 4", got)
	}
	b.Advance(1200, 300, 1) // +4 s at a higher rate
	if got := b.RemainingSeconds(); math.Abs(float64(got)-2) > 1e-9 {
		t.Errorf("RemainingSeconds = %v, want 2", got)
	}
	b.Advance(300, 150, 1) // +2 s
	if !b.DeliveryComplete() {
		t.Errorf("not complete after 10 s delivered (got %v)", b.DeliveredSeconds())
	}
	if b.RemainingSeconds() != 0 {
		t.Errorf("RemainingSeconds = %v after completion", b.RemainingSeconds())
	}
}

func TestSecondsModePlaybackComplete(t *testing.T) {
	b, _ := NewSeconds(3)
	b.Advance(300, 100, 1) // 3 s delivered in slot 0
	for i := 0; i < 5; i++ {
		b.Advance(0, 100, 1)
	}
	if !b.PlaybackComplete() {
		t.Errorf("playback incomplete: elapsed=%v occupancy=%v", b.Elapsed(), b.Occupancy())
	}
}

// Property: in seconds mode, DeliveredSeconds equals the sum of per-slot
// delivered/rate and remaining + delivered telescopes to the duration
// until completion.
func TestSecondsModeAccountingProperty(t *testing.T) {
	f := func(chunks []uint8) bool {
		b, err := NewSeconds(1e9)
		if err != nil {
			return false
		}
		var wantSec float64
		for _, c := range chunks {
			kb := units.KB(c)
			rate := units.KBps(100 + int(c)%300)
			if _, err := b.Advance(kb, rate, 1); err != nil {
				return false
			}
			if kb > 0 {
				wantSec += float64(kb) / float64(rate)
			}
		}
		if math.Abs(float64(b.DeliveredSeconds())-wantSec) > 1e-6 {
			return false
		}
		return math.Abs(float64(b.RemainingSeconds()+b.DeliveredSeconds())-1e9) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteModeBufferTracksDeliveredSecondsToo(t *testing.T) {
	b, _ := New(1000, 10)
	b.Advance(200, 100, 1)
	if got := b.DeliveredSeconds(); got != 2 {
		t.Errorf("byte-mode DeliveredSeconds = %v, want 2", got)
	}
}
