// Package playback models the client-side playout buffer of one streaming
// user: remaining occupancy (paper Eq. 7), per-slot rebuffering time
// (Eq. 8) and session completion.
//
// The paper's convention (Definition 1) is that a data shard allocated in
// slot n becomes playable only from slot n+1, which is why the occupancy
// recursion uses the *previous* slot's delivery:
//
//	r(n) = max{r(n−1) − τ, 0} + t(n−1),  t(n) = d(n)/p(n),  r(0) = 0
//	c(n) = max{τ − r(n), 0}  while elapsed playback m(n) < total M
//
// Buffer keeps both the occupancy in playback-seconds and the raw byte
// accounting (delivered vs. video size), so schedulers can cap allocations
// at the remaining video size and the simulator can detect completion.
package playback

import (
	"fmt"

	"jointstream/internal/units"
)

// Buffer is the playout state of a single user. Create one with New and
// advance it once per slot with Advance.
type Buffer struct {
	videoSize units.KB      // total bytes of the video (byte mode)
	duration  units.Seconds // total playback time M_i

	occupancy    units.Seconds // r_i(n): playable seconds buffered
	elapsed      units.Seconds // m_i(n): seconds of video already played
	delivered    units.KB      // bytes received so far
	deliveredSec units.Seconds // playback seconds received so far (Σ d/p)
	pending      units.Seconds // t_i(n−1): playback time of the shard delivered last slot

	rebuffer units.Seconds // accumulated rebuffering time Σ c_i
	slots    int           // slots advanced so far

	// secondsMode marks an adaptive-bitrate session: the video is a fixed
	// amount of *content time* whose byte size depends on the rates the
	// player selects, so delivery completes when the delivered playback
	// seconds cover the duration rather than when a byte count is reached.
	secondsMode bool

	// tol caches completionTolerance(duration) — a pure function of the
	// duration — so the per-slot completion checks compare against a
	// stored value instead of recomputing it.
	tol units.Seconds
}

// Init resets b in place to a fresh buffer for a video of the given size
// and total playback duration, without allocating. Duration is the paper's
// M_i; for a constant-bit-rate session it equals size divided by the
// encoding rate.
func (b *Buffer) Init(size units.KB, duration units.Seconds) error {
	if size <= 0 {
		return fmt.Errorf("playback: non-positive video size %v", size)
	}
	if duration <= 0 {
		return fmt.Errorf("playback: non-positive duration %v", duration)
	}
	*b = Buffer{videoSize: size, duration: duration, tol: completionTolerance(duration)}
	return nil
}

// InitSeconds resets b in place to a fresh adaptive-bitrate buffer: a
// fixed content duration whose byte size follows the rates chosen at
// delivery time. DeliveryComplete flips once the delivered playback
// seconds cover the duration.
func (b *Buffer) InitSeconds(duration units.Seconds) error {
	if duration <= 0 {
		return fmt.Errorf("playback: non-positive duration %v", duration)
	}
	*b = Buffer{duration: duration, secondsMode: true, tol: completionTolerance(duration)}
	return nil
}

// New creates the buffer for a video of the given size and total playback
// duration; see Init.
func New(size units.KB, duration units.Seconds) (*Buffer, error) {
	b := new(Buffer)
	if err := b.Init(size, duration); err != nil {
		return nil, err
	}
	return b, nil
}

// NewSeconds creates the buffer for an adaptive-bitrate session; see
// InitSeconds.
func NewSeconds(duration units.Seconds) (*Buffer, error) {
	b := new(Buffer)
	if err := b.InitSeconds(duration); err != nil {
		return nil, err
	}
	return b, nil
}

// SecondsMode reports whether this is an adaptive (content-time) session.
func (b *Buffer) SecondsMode() bool { return b.secondsMode }

// DeliveredSeconds returns the playback seconds received so far.
func (b *Buffer) DeliveredSeconds() units.Seconds { return b.deliveredSec }

// RemainingSeconds returns the content time still to be delivered
// (seconds mode; zero once delivery is complete).
func (b *Buffer) RemainingSeconds() units.Seconds {
	rem := b.duration - b.deliveredSec
	if rem < 0 {
		return 0
	}
	return rem
}

// VideoSize returns the total size of the video in KB.
func (b *Buffer) VideoSize() units.KB { return b.videoSize }

// Duration returns the total playback time M_i.
func (b *Buffer) Duration() units.Seconds { return b.duration }

// Occupancy returns r_i(n), the playable seconds currently buffered.
func (b *Buffer) Occupancy() units.Seconds { return b.occupancy }

// Elapsed returns m_i(n), the seconds of video already played out.
func (b *Buffer) Elapsed() units.Seconds { return b.elapsed }

// Delivered returns the bytes received so far.
func (b *Buffer) Delivered() units.KB { return b.delivered }

// RemainingBytes returns the bytes still to be delivered.
func (b *Buffer) RemainingBytes() units.KB {
	rem := b.videoSize - b.delivered
	if rem < 0 {
		return 0
	}
	return rem
}

// DeliveryComplete reports whether the full video has been delivered:
// all bytes in byte mode, all content seconds in seconds mode.
func (b *Buffer) DeliveryComplete() bool {
	if b.secondsMode {
		return b.deliveredSec >= b.duration-b.tol
	}
	return b.delivered >= b.videoSize
}

// PlaybackComplete reports whether the user has watched the whole video
// (m_i ≥ M_i), after which rebuffering no longer accrues (Eq. 8).
//
// Completion is declared in two ways. First, elapsed playback reaching the
// duration up to a floating-point tolerance: the duration is reconstructed
// slot-by-slot as Σ d_i(n)/p_i(n), and demanding exact equality would let
// accumulated rounding error strand a finished user in a permanent
// one-slot-short rebuffering loop. Second, a fully delivered video whose
// buffer has drained is complete by definition — no further playback
// seconds can ever arrive — which also covers variable-bit-rate sessions
// whose realized Σ d/p differs slightly from the nominal duration.
func (b *Buffer) PlaybackComplete() bool {
	if b.elapsed >= b.duration-b.tol {
		return true
	}
	return b.DeliveryComplete() && b.occupancy == 0 && b.pending == 0 && b.slots > 0
}

// completionTolerance returns the absolute slack used to compare elapsed
// playback against the duration: one part in 10^9, floored at 1 µs.
func completionTolerance(d units.Seconds) units.Seconds {
	tol := d * 1e-9
	if tol < 1e-6 {
		tol = 1e-6
	}
	return tol
}

// TotalRebuffer returns the accumulated rebuffering time Σ_n c_i(n).
func (b *Buffer) TotalRebuffer() units.Seconds { return b.rebuffer }

// Slots returns how many slots this buffer has been advanced.
func (b *Buffer) Slots() int { return b.slots }

// Advance moves the buffer through one slot of length tau during which
// `delivered` bytes arrived for a video encoded at `rate` (p_i(n), the
// required data rate in this slot). It returns the rebuffering time c_i(n)
// incurred in this slot.
//
// Following the paper's shard semantics, the data delivered in this slot
// becomes playable at the next Advance call; the occupancy consumed by this
// slot's playback is whatever was buffered at the slot boundary.
func (b *Buffer) Advance(delivered units.KB, rate units.KBps, tau units.Seconds) (units.Seconds, error) {
	if delivered < 0 {
		return 0, fmt.Errorf("playback: negative delivery %v", delivered)
	}
	if tau <= 0 {
		return 0, fmt.Errorf("playback: non-positive slot length %v", tau)
	}
	if delivered > 0 && rate <= 0 {
		return 0, fmt.Errorf("playback: delivery with non-positive rate %v", rate)
	}

	// The two completion checks below (drain gate, rebuffer gate) share
	// their inputs — elapsed, delivery and the pre-update slot count — so
	// the predicates are evaluated once instead of re-deriving
	// PlaybackComplete from scratch on both sides of the occupancy update.
	elapsedDone := b.elapsed >= b.duration-b.tol
	delivDone := b.DeliveryComplete()
	complete := elapsedDone || (delivDone && b.occupancy == 0 && b.pending == 0 && b.slots > 0)

	// Eq. (7): fold in the shard delivered in the previous slot, then age
	// the buffer by one slot of playback (a finished session no longer
	// drains).
	drain := tau
	if complete {
		drain = 0
	}
	b.occupancy = maxSec(b.occupancy-drain, 0) + b.pending

	// Eq. (8): rebuffering accrues only while the video is still playing —
	// the completion predicate is re-checked against the updated occupancy
	// (elapsed and delivery cannot have changed yet).
	var c units.Seconds
	if !complete && !(delivDone && b.occupancy == 0 && b.pending == 0 && b.slots > 0) {
		c = maxSec(tau-b.occupancy, 0)
		// Playback progresses by however much of the slot had data.
		played := tau - c
		remaining := b.duration - b.elapsed
		if played > remaining {
			played = remaining
		}
		b.elapsed += played
		b.rebuffer += c
	}

	// Record this slot's delivery; playable from the next slot (t_i(n)).
	b.delivered += delivered
	if delivered > 0 {
		b.pending = units.Seconds(float64(delivered) / float64(rate))
		b.deliveredSec += b.pending
	} else {
		b.pending = 0
	}
	b.slots++
	return c, nil
}

func maxSec(a, b units.Seconds) units.Seconds {
	if a > b {
		return a
	}
	return b
}
