package playback

import (
	"math"
	"testing"
	"testing/quick"

	"jointstream/internal/units"
)

func mustNew(t *testing.T, size units.KB, dur units.Seconds) *Buffer {
	t.Helper()
	b, err := New(size, dur)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(100, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := New(-5, 10); err == nil {
		t.Error("negative size accepted")
	}
}

func TestInitialState(t *testing.T) {
	b := mustNew(t, 1000, 10)
	if b.Occupancy() != 0 || b.Elapsed() != 0 || b.Delivered() != 0 {
		t.Error("fresh buffer not empty")
	}
	if b.DeliveryComplete() || b.PlaybackComplete() {
		t.Error("fresh buffer reports completion")
	}
	if b.RemainingBytes() != 1000 {
		t.Errorf("RemainingBytes = %v, want 1000", b.RemainingBytes())
	}
}

// First slot always rebuffers: r(0)=0, shards become playable next slot.
func TestFirstSlotRebuffers(t *testing.T) {
	b := mustNew(t, 1000, 10)
	c, err := b.Advance(100, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1 {
		t.Errorf("first-slot rebuffer = %v, want full slot 1s", c)
	}
}

// A shard delivered in slot n is playable in slot n+1 (Definition 1).
func TestShardPlayableNextSlot(t *testing.T) {
	b := mustNew(t, 1000, 10)
	b.Advance(200, 100, 1) // delivers 2s of playback, playable next slot
	c, _ := b.Advance(0, 100, 1)
	if c != 0 {
		t.Errorf("slot 1 rebuffer = %v, want 0 (2s buffered)", c)
	}
	if got := b.Elapsed(); got != 1 {
		t.Errorf("elapsed = %v, want 1", got)
	}
}

// Occupancy recursion Eq. (7): r(n) = max(r(n-1) - tau, 0) + t(n-1).
func TestOccupancyRecursion(t *testing.T) {
	b := mustNew(t, 10000, 100)
	// Slot 0: deliver 300KB at 100KB/s => t(0) = 3s.
	b.Advance(300, 100, 1)
	// Slot 1 start: r = max(0-1,0) + 3 = 3.
	b.Advance(0, 100, 1)
	if got := b.Occupancy(); got != 3 {
		t.Errorf("r(1) = %v, want 3", got)
	}
	// Slot 2 start: r = max(3-1,0) + 0 = 2.
	b.Advance(0, 100, 1)
	if got := b.Occupancy(); got != 2 {
		t.Errorf("r(2) = %v, want 2", got)
	}
	// Slot 3: r = 1. Slot 4: r = 0 and rebuffering resumes.
	b.Advance(0, 100, 1)
	c, _ := b.Advance(0, 100, 1)
	if got := b.Occupancy(); got != 0 {
		t.Errorf("r(4) = %v, want 0", got)
	}
	if c != 1 {
		t.Errorf("c(4) = %v, want 1", c)
	}
}

// Rebuffering Eq. (8): partial occupancy yields partial rebuffering.
func TestPartialSlotRebuffer(t *testing.T) {
	b := mustNew(t, 10000, 100)
	b.Advance(50, 100, 1) // t(0) = 0.5s
	c, _ := b.Advance(0, 100, 1)
	if math.Abs(float64(c)-0.5) > 1e-9 {
		t.Errorf("c = %v, want 0.5", c)
	}
	if math.Abs(float64(b.Elapsed())-0.5) > 1e-9 {
		t.Errorf("elapsed = %v, want 0.5", b.Elapsed())
	}
}

func TestSteadyStreamNoRebufferAfterStartup(t *testing.T) {
	b := mustNew(t, 100000, 1000)
	// Deliver exactly one slot of playback every slot.
	var total units.Seconds
	for i := 0; i < 100; i++ {
		c, err := b.Advance(100, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		total += c
	}
	// Only the very first slot rebuffers.
	if total != 1 {
		t.Errorf("total rebuffer = %v, want 1 (startup only)", total)
	}
	if b.TotalRebuffer() != total {
		t.Errorf("TotalRebuffer = %v, want %v", b.TotalRebuffer(), total)
	}
}

func TestDeliveryCompletion(t *testing.T) {
	b := mustNew(t, 250, 10)
	b.Advance(100, 100, 1)
	if b.DeliveryComplete() {
		t.Error("complete too early")
	}
	b.Advance(150, 100, 1)
	if !b.DeliveryComplete() {
		t.Error("not complete after full delivery")
	}
	if b.RemainingBytes() != 0 {
		t.Errorf("RemainingBytes = %v, want 0", b.RemainingBytes())
	}
}

func TestRemainingBytesNeverNegative(t *testing.T) {
	b := mustNew(t, 100, 10)
	b.Advance(500, 100, 1) // overdeliver
	if b.RemainingBytes() != 0 {
		t.Errorf("RemainingBytes = %v, want 0", b.RemainingBytes())
	}
}

func TestPlaybackCompletionStopsRebuffering(t *testing.T) {
	// 2-second video delivered fully in slot 0.
	b := mustNew(t, 200, 2)
	b.Advance(200, 100, 1) // c=1 (startup)
	b.Advance(0, 100, 1)   // plays 1s
	b.Advance(0, 100, 1)   // plays 2nd second; playback complete
	if !b.PlaybackComplete() {
		t.Fatalf("playback not complete: elapsed=%v", b.Elapsed())
	}
	before := b.TotalRebuffer()
	for i := 0; i < 10; i++ {
		c, _ := b.Advance(0, 100, 1)
		if c != 0 {
			t.Errorf("post-completion rebuffer %v", c)
		}
	}
	if b.TotalRebuffer() != before {
		t.Error("rebuffer accrued after completion")
	}
}

func TestElapsedNeverExceedsDuration(t *testing.T) {
	b := mustNew(t, 1000, 3.5)
	for i := 0; i < 20; i++ {
		b.Advance(100, 100, 1)
	}
	if b.Elapsed() > 3.5 {
		t.Errorf("elapsed %v exceeds duration 3.5", b.Elapsed())
	}
	if !b.PlaybackComplete() {
		t.Error("should be complete")
	}
}

func TestAdvanceValidation(t *testing.T) {
	b := mustNew(t, 1000, 10)
	if _, err := b.Advance(-1, 100, 1); err == nil {
		t.Error("negative delivery accepted")
	}
	if _, err := b.Advance(100, 0, 1); err == nil {
		t.Error("delivery with zero rate accepted")
	}
	if _, err := b.Advance(100, 100, 0); err == nil {
		t.Error("zero tau accepted")
	}
	// Zero delivery with zero rate is fine (no division needed).
	if _, err := b.Advance(0, 0, 1); err != nil {
		t.Errorf("zero delivery rejected: %v", err)
	}
}

func TestSlotsCounter(t *testing.T) {
	b := mustNew(t, 1000, 10)
	for i := 0; i < 7; i++ {
		b.Advance(10, 100, 1)
	}
	if b.Slots() != 7 {
		t.Errorf("Slots = %d, want 7", b.Slots())
	}
}

func TestAccessors(t *testing.T) {
	b := mustNew(t, 350000, 800)
	if b.VideoSize() != 350000 {
		t.Errorf("VideoSize = %v", b.VideoSize())
	}
	if b.Duration() != 800 {
		t.Errorf("Duration = %v", b.Duration())
	}
}

// Property: total rebuffer + elapsed playback == slots * tau while the
// session is still incomplete (every pre-completion slot is either
// playback or stall). This is the identity behind the paper's Eq. (15).
func TestSlotAccountingIdentityProperty(t *testing.T) {
	f := func(seed uint64, deliveries []uint16) bool {
		if len(deliveries) == 0 {
			return true
		}
		b, err := New(1e9, 1e9) // effectively never completes
		if err != nil {
			return false
		}
		for _, d := range deliveries {
			if _, err := b.Advance(units.KB(d), 400, 1); err != nil {
				return false
			}
		}
		got := float64(b.TotalRebuffer() + b.Elapsed())
		want := float64(b.Slots())
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rebuffering per slot is within [0, tau].
func TestRebufferBoundedProperty(t *testing.T) {
	f := func(deliveries []uint16) bool {
		b, err := New(1e9, 1e9)
		if err != nil {
			return false
		}
		for _, d := range deliveries {
			c, err := b.Advance(units.KB(d), 400, 1)
			if err != nil || c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: delivered bytes equal the sum of per-slot deliveries.
func TestDeliveredConservationProperty(t *testing.T) {
	f := func(deliveries []uint16) bool {
		b, err := New(1e9, 1e9)
		if err != nil {
			return false
		}
		var sum units.KB
		for _, d := range deliveries {
			b.Advance(units.KB(d), 400, 1)
			sum += units.KB(d)
		}
		return b.Delivered() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: occupancy is always non-negative, and bounded by total
// delivered playback seconds.
func TestOccupancyBoundsProperty(t *testing.T) {
	f := func(deliveries []uint16) bool {
		b, err := New(1e9, 1e9)
		if err != nil {
			return false
		}
		var deliveredSec float64
		for _, d := range deliveries {
			b.Advance(units.KB(d), 400, 1)
			deliveredSec += float64(d) / 400
			if b.Occupancy() < 0 {
				return false
			}
			if float64(b.Occupancy()) > deliveredSec+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
